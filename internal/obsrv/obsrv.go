// Package obsrv is the live introspection server: an embeddable,
// stdlib-only HTTP endpoint that exposes a running simulation's
// telemetry (/metrics, Prometheus text), decision stream (/events,
// Server-Sent Events), canonical scheduler state (/state), wait
// attribution (/blame), health and readiness probes, and the standard
// pprof handlers.
//
// The design constraint that shapes everything here is that the
// simulation is single-threaded and deterministic: HTTP handlers run on
// their own goroutines and must never call into the engine, and nothing
// a reader does (connect, stall, disconnect) may change what the run
// computes. The package therefore only ever serves published
// snapshots — the engine goroutine pushes copies out through atomic
// pointers (MaybePublish, from the sim.Engine step hook) and the Hub
// fans events out through bounded rings that drop rather than block.
package obsrv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"rdasched/internal/core"
	"rdasched/internal/telemetry"
	"rdasched/internal/telemetry/blame"
	"rdasched/internal/version"
)

// Introspection metric names, registered in the scrape-time mini
// registry appended to every /metrics response.
const (
	MetricDroppedEvents = "rda_obsrv_dropped_events_total"
	MetricScrapes       = "rda_obsrv_scrapes_total"
	MetricSubscribers   = "rda_obsrv_subscribers"
)

// Config configures a Server.
type Config struct {
	// Addr is the listen address (e.g. ":8080", "127.0.0.1:0").
	Addr string
	// EventBuffer is the per-subscriber ring capacity for /events;
	// 0 means DefaultEventBuffer.
	EventBuffer int
	// StatePeriod is the minimum wall-clock interval between state/blame
	// publications from MaybePublish; 0 means DefaultStatePeriod.
	StatePeriod time.Duration
}

// DefaultEventBuffer is the /events per-subscriber ring capacity.
const DefaultEventBuffer = 1024

// DefaultStatePeriod is the MaybePublish wall-clock gate.
const DefaultStatePeriod = 250 * time.Millisecond

// Server is one live introspection endpoint. All exported methods are
// safe for concurrent use; the publish methods are expected to be
// called from the engine goroutine and the HTTP handlers read only
// atomically-published copies.
type Server struct {
	hub         *Hub
	ln          net.Listener
	srv         *http.Server
	eventBuffer int
	statePeriod time.Duration

	registry atomic.Pointer[telemetry.Registry]
	state    atomic.Pointer[[]byte] // canonical core.State JSON
	blame    atomic.Pointer[[]byte] // blame.Report JSON

	ready   atomic.Bool
	stop    atomic.Bool
	scrapes atomic.Uint64
	lastPub atomic.Int64 // wall unixnano of the last MaybePublish

	done     chan struct{} // closed by Close; unblocks SSE handlers
	serveErr chan error
}

// Serve binds cfg.Addr and starts serving in a background goroutine.
// The returned server is live immediately (Addr reports the bound
// address, which matters for ":0"); the caller must Close it.
func Serve(cfg Config) (*Server, error) {
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = DefaultEventBuffer
	}
	if cfg.StatePeriod <= 0 {
		cfg.StatePeriod = DefaultStatePeriod
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obsrv: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		hub:         NewHub(),
		ln:          ln,
		eventBuffer: cfg.EventBuffer,
		statePeriod: cfg.StatePeriod,
		done:        make(chan struct{}),
		serveErr:    make(chan error, 1),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/blame", s.handleBlame)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() { s.serveErr <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Hub returns the event fan-out; attach it to the scheduler with
// AddSink so /events receives the decision stream.
func (s *Server) Hub() *Hub { return s.hub }

// SetRegistry publishes the registry /metrics scrapes from. The
// registry stays live — scrapes snapshot it — so this is called once
// per run, not per update.
func (s *Server) SetRegistry(r *telemetry.Registry) { s.registry.Store(r) }

// PublishState publishes a state snapshot for /state. Called on the
// engine goroutine; the encoding happens there so handlers only copy
// bytes.
func (s *Server) PublishState(st core.State) error {
	buf, err := st.Canonical()
	if err != nil {
		return err
	}
	s.state.Store(&buf)
	return nil
}

// PublishBlame publishes a wait-attribution report for /blame.
func (s *Server) PublishBlame(rpt *blame.Report) error {
	if rpt == nil {
		return nil
	}
	buf, err := json.Marshal(rpt)
	if err != nil {
		return err
	}
	s.blame.Store(&buf)
	return nil
}

// SetReady flips the /readyz gate: false while restoring a checkpoint
// or before the run starts, true once the run is live.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// RequestStop asks the run to halt at the next event boundary. Safe
// from any goroutine (it is called from signal handlers); the engine
// goroutine observes it via StopRequested in its step hook.
func (s *Server) RequestStop() { s.stop.Store(true) }

// StopRequested reports whether RequestStop has been called.
func (s *Server) StopRequested() bool { return s.stop.Load() }

// MaybePublish publishes state (and blame, when rpt is non-nil) if at
// least the configured StatePeriod of wall time has passed since the
// last publication. It is designed to be called from the engine step
// hook after every event: the atomic gate makes the common case one
// clock read, so pacing-off runs are not slowed by snapshot encoding.
func (s *Server) MaybePublish(state func() core.State, rpt func() *blame.Report) {
	now := time.Now().UnixNano()
	last := s.lastPub.Load()
	if now-last < int64(s.statePeriod) {
		return
	}
	if !s.lastPub.CompareAndSwap(last, now) {
		return
	}
	if state != nil {
		_ = s.PublishState(state())
	}
	if rpt != nil {
		_ = s.PublishBlame(rpt())
	}
}

// Close shuts the server down: SSE streams are released, in-flight
// requests get until ctx's deadline to finish, and the listener is
// closed. Idempotent enough for defer (second call returns the shutdown
// error state).
func (s *Server) Close(ctx context.Context) error {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	err := s.srv.Shutdown(ctx)
	if serr := <-s.serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	s.serveErr <- nil // keep later Close calls from blocking
	return err
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%s — live introspection\n\n", version.String())
	fmt.Fprintln(w, "GET /metrics       Prometheus text exposition (live scrape)")
	fmt.Fprintln(w, "GET /events        decision stream (Server-Sent Events)")
	fmt.Fprintln(w, "GET /state         canonical scheduler state (JSON)")
	fmt.Fprintln(w, "GET /blame         wait-attribution report (JSON)")
	fmt.Fprintln(w, "GET /healthz       liveness + build info")
	fmt.Fprintln(w, "GET /readyz        readiness gate")
	fmt.Fprintln(w, "GET /debug/pprof/  Go runtime profiles")
}

// handleMetrics scrapes the run registry live (via its race-free
// Snapshot path) and appends the server's own instruments, rendered
// through a throwaway telemetry.Registry so both halves share one
// encoder and the whole exposition stays Lint-clean.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.scrapes.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if reg := s.registry.Load(); reg != nil {
		if err := reg.WritePrometheus(w); err != nil {
			return
		}
	}
	own := telemetry.NewRegistry()
	own.Counter(MetricDroppedEvents).Add(s.hub.Dropped())
	own.Counter(MetricScrapes).Add(s.scrapes.Load())
	own.Gauge(MetricSubscribers).Set(float64(s.hub.Subscribers()))
	_ = own.WritePrometheus(w)
}

// wireEvent is the /events JSON payload for one scheduling decision.
type wireEvent struct {
	AtS             float64 `json:"at_s"`
	Kind            string  `json:"kind"`
	ID              uint64  `json:"id"`
	Proc            int     `json:"proc"`
	Phase           int     `json:"phase"`
	WorkingSetBytes int64   `json:"working_set_bytes"`
	LoadBytes       int64   `json:"load_bytes"`
	WaitS           float64 `json:"wait_s"`
	Domain          int     `json:"domain"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	// Subscribe before the response headers go out: a client that has
	// seen the 200 is guaranteed to be in the fan-out, so "connect, then
	// start the run" observes the run's first event.
	sub := s.hub.Subscribe(s.eventBuffer)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	var seq uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			// Server shutting down: drain what the ring already holds so a
			// reader sees every event the engine managed to hand off, then
			// end the stream so Shutdown can complete.
			for {
				select {
				case e := <-sub.Events():
					seq++
					if writeSSE(w, seq, e) != nil {
						return
					}
				default:
					fl.Flush()
					return
				}
			}
		case e := <-sub.Events():
			seq++
			if err := writeSSE(w, seq, e); err != nil {
				return
			}
			// Flush per event: the stream is for live watching, and paced
			// runs emit slowly enough that batching buys nothing.
			fl.Flush()
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, seq uint64, e core.Event) error {
	data, err := json.Marshal(wireEvent{
		AtS:             e.At.Seconds(),
		Kind:            e.Kind.String(),
		ID:              uint64(e.ID),
		Proc:            e.Proc,
		Phase:           e.Phase,
		WorkingSetBytes: int64(e.Demand.WorkingSet),
		LoadBytes:       int64(e.Load),
		WaitS:           e.Wait.Seconds(),
		Domain:          e.Domain,
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: sched\ndata: %s\n\n", seq, data)
	return err
}

// serveJSON writes a published snapshot, or 503 while none exists yet
// (the run has not reached its first publication gate).
func serveJSON(w http.ResponseWriter, p *atomic.Pointer[[]byte], what string) {
	buf := p.Load()
	if buf == nil {
		http.Error(w, what+" not yet published", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(*buf)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	serveJSON(w, &s.state, "state")
}

func (s *Server) handleBlame(w http.ResponseWriter, r *http.Request) {
	serveJSON(w, &s.blame, "blame report")
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Status      string `json:"status"`
		Version     string `json:"version"`
		Recorded    uint64 `json:"events_recorded"`
		Dropped     uint64 `json:"events_dropped"`
		Subscribers int    `json:"subscribers"`
	}{"ok", version.String(), s.hub.Recorded(), s.hub.Dropped(), s.hub.Subscribers()})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}
