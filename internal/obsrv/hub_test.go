package obsrv

import (
	"testing"
	"time"

	"rdasched/internal/core"
	"rdasched/internal/sim"
)

func ev(i int) core.Event {
	return core.Event{At: sim.Time(i), Kind: core.EventAdmit, Proc: i}
}

// TestHubDeliversToSubscriber: events published after Subscribe arrive
// in order on the subscription channel.
func TestHubDeliversToSubscriber(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(8)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		h.Record(ev(i))
	}
	for i := 0; i < 5; i++ {
		select {
		case e := <-sub.Events():
			if e.Proc != i {
				t.Fatalf("event %d has Proc %d (reordered?)", i, e.Proc)
			}
		default:
			t.Fatalf("event %d not delivered", i)
		}
	}
	if h.Recorded() != 5 || h.Dropped() != 0 || sub.Dropped() != 0 {
		t.Fatalf("recorded/dropped = %d/%d, sub dropped %d", h.Recorded(), h.Dropped(), sub.Dropped())
	}
}

// TestHubSlowConsumerDrops: a full ring drops the newest events and
// counts every one, per subscriber and hub-wide; delivered events are
// untouched.
func TestHubSlowConsumerDrops(t *testing.T) {
	h := NewHub()
	slow := h.Subscribe(2)
	defer slow.Close()
	fast := h.Subscribe(16)
	defer fast.Close()
	for i := 0; i < 10; i++ {
		h.Record(ev(i))
	}
	if got := slow.Dropped(); got != 8 {
		t.Fatalf("slow subscriber dropped %d, want 8", got)
	}
	if got := fast.Dropped(); got != 0 {
		t.Fatalf("fast subscriber dropped %d, want 0", got)
	}
	if got := h.Dropped(); got != 8 {
		t.Fatalf("hub dropped %d, want 8 (per-delivery accounting)", got)
	}
	// The slow ring holds the oldest two events (drop-newest policy: the
	// engine never waits for a drain).
	for i := 0; i < 2; i++ {
		e := <-slow.Events()
		if e.Proc != i {
			t.Fatalf("slow ring slot %d holds Proc %d, want %d", i, e.Proc, i)
		}
	}
}

// TestHubRecordNeverBlocks: publishing with zero subscribers, an
// abandoned full subscription, and after Close always returns promptly.
// The watchdog timeout only trips if Record blocks, which is exactly
// the engine-stall bug the hub exists to prevent.
func TestHubRecordNeverBlocks(t *testing.T) {
	h := NewHub()
	abandoned := h.Subscribe(1)
	closed := h.Subscribe(1)
	closed.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10_000; i++ {
			h.Record(ev(i))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked against a stalled subscriber")
	}
	if got := abandoned.Dropped(); got != 9_999 {
		t.Fatalf("abandoned subscription dropped %d, want 9999", got)
	}
	if got := closed.Dropped(); got != 0 {
		t.Fatalf("closed subscription dropped %d, want 0 (still registered?)", got)
	}
}

// TestHubUnsubscribe: Close removes the subscriber (no further
// deliveries, no further drop accounting) and is idempotent.
func TestHubUnsubscribe(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(1)
	if got := h.Subscribers(); got != 1 {
		t.Fatalf("subscribers = %d, want 1", got)
	}
	sub.Close()
	sub.Close() // idempotent
	if got := h.Subscribers(); got != 0 {
		t.Fatalf("subscribers after Close = %d, want 0", got)
	}
	h.Record(ev(0))
	h.Record(ev(1))
	if got := h.Dropped(); got != 0 {
		t.Fatalf("hub counted %d drops for an unsubscribed ring", got)
	}
	select {
	case <-sub.Events():
		t.Fatal("event delivered after Close")
	default:
	}
}

// BenchmarkHubRecord pins the per-event cost of the fan-out the engine
// pays while a server is attached: with no subscriber the record is a
// counter bump behind a short mutex, and with one saturated subscriber
// it is still a non-blocking drop — neither path may allocate.
func BenchmarkHubRecord(b *testing.B) {
	b.Run("no-subscribers", func(b *testing.B) {
		h := NewHub()
		e := ev(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Record(e)
		}
	})
	b.Run("one-saturated-subscriber", func(b *testing.B) {
		h := NewHub()
		sub := h.Subscribe(1)
		defer sub.Close()
		e := ev(0)
		h.Record(e) // fill the ring; every further record drops
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Record(e)
		}
	})
}
