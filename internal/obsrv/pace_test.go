package obsrv

import (
	"testing"
	"time"

	"rdasched/internal/sim"
)

func TestParsePace(t *testing.T) {
	cases := []struct {
		in      string
		want    float64
		wantErr bool
	}{
		{"max", 0, false},
		{"MAX", 0, false},
		{"", 0, false},
		{"1x", 1, false},
		{"10x", 10, false},
		{"0.5x", 0.5, false},
		{"2", 2, false}, // bare ratio, no suffix
		{" 4x ", 4, false},
		{"0x", 0, true},
		{"0", 0, true},
		{"-2x", 0, true},
		{"fast", 0, true},
		{"x", 0, true},
		{"10x10", 0, true},
	}
	for _, tc := range cases {
		got, err := ParsePace(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePace(%q) accepted, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePace(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParsePace(%q) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

// TestPacerNilIsNoOp: ratio <= 0 disables pacing entirely, and the nil
// receiver is safe to call.
func TestPacerNilIsNoOp(t *testing.T) {
	var p *Pacer
	p.Pace(sim.Time(1e12)) // must not panic or sleep
	if NewPacer(0) != nil || NewPacer(-1) != nil {
		t.Fatal("NewPacer with non-positive ratio should return nil")
	}
}

// TestPacerSleepTargets checks the wall targets a pacer computes: with
// the sleep injected, 2 virtual seconds at 10x must wait to the
// 0.2-wall-second mark from the anchor, and a virtual clock that is
// behind the wall must not sleep at all.
func TestPacerSleepTargets(t *testing.T) {
	p := NewPacer(10)
	var slept []time.Duration
	p.sleep = func(d time.Duration) { slept = append(slept, d) }

	p.Pace(sim.Time(0)) // anchors, never sleeps
	if len(slept) != 0 {
		t.Fatalf("anchor call slept %v", slept)
	}
	p.Pace(sim.Time(2 * sim.Second))
	if len(slept) != 1 {
		t.Fatalf("expected one sleep, got %v", slept)
	}
	// Target is anchor + 200ms; the elapsed wall time between the two
	// Pace calls only shrinks the sleep, so bound it from both sides.
	if slept[0] <= 0 || slept[0] > 200*time.Millisecond {
		t.Fatalf("sleep %v outside (0, 200ms]", slept[0])
	}

	// A pacer that is already behind the wall clock never sleeps: anchor,
	// stall the wall, then advance virtual time by less than the stall.
	q := NewPacer(1000)
	q.sleep = func(d time.Duration) { t.Fatalf("paced a virtual clock that is behind the wall (slept %v)", d) }
	q.Pace(sim.Time(0))
	time.Sleep(5 * time.Millisecond)
	q.Pace(sim.Time(1 * sim.Second)) // 1 virtual second = 1ms wall at 1000x, already passed
}
