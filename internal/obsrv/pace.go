package obsrv

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"rdasched/internal/sim"
)

// Wall-clock pacing. The simulation normally burns through virtual time
// as fast as the host allows — a multi-second run finishes in
// milliseconds, which makes the live endpoints useless to a human (and
// to a scraper with a finite poll interval). A Pacer throttles the
// engine from the sim.Engine step hook so that virtual time advances at
// a fixed multiple of wall time: ratio 1 is real time, ratio 10 lets 10
// virtual seconds pass per wall second, ratio 0 disables pacing.
//
// Pacing only ever sleeps between events; it cannot reorder, add, or
// drop them, so a paced run produces byte-identical results to an
// unpaced one — the whole point is to watch the same run slowly.

// ParsePace parses the CLI -pace syntax: "max" (or "") for unthrottled,
// or "<ratio>x" / "<ratio>" for a positive virtual-per-wall multiplier
// ("1x" real time, "10x" ten times faster, "0.5x" half speed).
func ParsePace(s string) (float64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" || t == "max" {
		return 0, nil
	}
	t = strings.TrimSuffix(t, "x")
	ratio, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("obsrv: bad pace %q (want \"max\" or a ratio like \"1x\", \"10x\")", s)
	}
	if ratio <= 0 {
		return 0, fmt.Errorf("obsrv: bad pace %q (ratio must be positive)", s)
	}
	return ratio, nil
}

// Pacer maps the virtual clock onto the wall clock at a fixed ratio.
// It is used from a single goroutine (the engine's); a fresh Pacer is
// built per run so repetitions each re-anchor at their own start.
type Pacer struct {
	ratio   float64 // virtual seconds per wall second
	started bool
	wall0   time.Time
	virt0   sim.Time
	sleep   func(time.Duration) // injectable for tests; time.Sleep otherwise
}

// NewPacer returns a pacer for the ratio, or nil when ratio <= 0 (the
// nil Pacer is a valid no-op receiver, so callers can hold one field).
func NewPacer(ratio float64) *Pacer {
	if ratio <= 0 {
		return nil
	}
	return &Pacer{ratio: ratio, sleep: time.Sleep}
}

// Pace blocks until the wall clock has caught up with virtual time now
// at the configured ratio. The first call anchors the mapping, so
// pacing measures from the first paced event, not process start.
func (p *Pacer) Pace(now sim.Time) {
	if p == nil {
		return
	}
	if !p.started {
		p.started = true
		p.wall0 = time.Now()
		p.virt0 = now
		return
	}
	virt := now.DurationSince(p.virt0).Seconds()
	target := p.wall0.Add(time.Duration(virt / p.ratio * float64(time.Second)))
	if d := time.Until(target); d > 200*time.Microsecond {
		p.sleep(d)
	}
}
