// Package sched provides the operating-system scheduling primitives the
// demand-aware extension builds on, mirroring the pieces of the Linux
// 4.6.0 scheduler the paper's prototype used: a wait queue with wake
// events (the mechanism its extension uses to pause and resume threads at
// progress-period boundaries) and a CFS-style fair run queue (the
// "underlying default scheduler" admitted threads are handed back to;
// internal/machine approximates it in the fluid limit, and the run queue
// here backs the discrete validation mode and unit tests).
package sched

import "fmt"

// WaitQueue is a FIFO wait queue with wake events, generic over the
// waiter handle type. It is deliberately minimal: the paper's extension
// needs exactly enqueue (pause), wake-first-that-fits (resume), and
// removal on exit.
type WaitQueue[T any] struct {
	items []waiter[T]
	seq   uint64
}

type waiter[T any] struct {
	v   T
	seq uint64
}

// Len returns the number of waiting entries.
func (q *WaitQueue[T]) Len() int { return len(q.items) }

// Enqueue appends v and returns a ticket usable with Remove.
func (q *WaitQueue[T]) Enqueue(v T) uint64 {
	q.seq++
	q.items = append(q.items, waiter[T]{v: v, seq: q.seq})
	return q.seq
}

// Seq returns the highest ticket issued so far. Together with EnqueueAs
// it lets a checkpoint capture the queue exactly: persist Seq plus each
// waiter's ticket, then rebuild with Reset(seq) + EnqueueAs per waiter.
func (q *WaitQueue[T]) Seq() uint64 { return q.seq }

// Reset clears the queue and restores the ticket counter to seq, which
// must be at least the current counter value of a fresh queue (i.e. any
// value; on a used queue it must not rewind below tickets still enqueued
// — Reset empties the queue first, so that cannot arise). It exists for
// the restore path: set the persisted counter, then re-insert waiters
// under their original tickets with EnqueueAs.
func (q *WaitQueue[T]) Reset(seq uint64) {
	q.items = q.items[:0]
	q.seq = seq
}

// Peek returns the oldest waiter without removing it.
func (q *WaitQueue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0].v, true
}

// Dequeue removes and returns the oldest waiter.
func (q *WaitQueue[T]) Dequeue() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0].v
	q.items[0] = waiter[T]{} // release reference
	q.items = q.items[1:]
	return v, true
}

// EnqueueAs re-inserts v under a previously issued ticket, restoring its
// original FIFO position: entries stay ordered by ticket, so a waiter
// that was dequeued for an admission probe and re-denied returns exactly
// where it was — its age (and any aging priority derived from the
// ticket's enqueue time) is preserved instead of reset. It panics on a
// ticket that was never issued or is still enqueued, both of which
// indicate a caller bug.
func (q *WaitQueue[T]) EnqueueAs(v T, ticket uint64) {
	if ticket == 0 || ticket > q.seq {
		panic(fmt.Sprintf("sched: EnqueueAs with unissued ticket %d (last issued %d)", ticket, q.seq))
	}
	i := 0
	for i < len(q.items) && q.items[i].seq < ticket {
		i++
	}
	if i < len(q.items) && q.items[i].seq == ticket {
		panic(fmt.Sprintf("sched: EnqueueAs with ticket %d still enqueued", ticket))
	}
	q.items = append(q.items, waiter[T]{})
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = waiter[T]{v: v, seq: ticket}
}

// AgedFirst returns (without removing) the waiter whose aging priority is
// highest among those at or above threshold, with ties broken by lowest
// ticket (oldest first) so the scan order is deterministic at equal
// priority. prio is evaluated exactly once per waiter per call; it is the
// caller's demand-aware aging function (typically wait-time × demand
// weight against the current virtual clock). ok=false means no waiter has
// aged yet — including on an empty queue, so aging needs no state across
// empty→nonempty transitions: priority derives entirely from each
// waiter's own enqueue bookkeeping.
func (q *WaitQueue[T]) AgedFirst(threshold float64, prio func(T) float64) (v T, ticket uint64, ok bool) {
	best := -1
	var bestPrio float64
	for i := range q.items {
		p := prio(q.items[i].v)
		if p < threshold {
			continue
		}
		// Strictly greater wins; at equal priority the earlier entry
		// (lower seq, and we scan in seq order) is kept.
		if best == -1 || p > bestPrio {
			best = i
			bestPrio = p
		}
	}
	if best == -1 {
		var zero T
		return zero, 0, false
	}
	return q.items[best].v, q.items[best].seq, true
}

// Each calls fn for every waiter in FIFO (ticket) order without
// modifying the queue. fn must not mutate the queue; callers that need
// to remove entries collect tickets first and Remove afterwards. This
// is the read side the cross-domain steal scan uses to enumerate aged
// waiters across several queues.
func (q *WaitQueue[T]) Each(fn func(v T, ticket uint64)) {
	for i := range q.items {
		fn(q.items[i].v, q.items[i].seq)
	}
}

// Remove deletes the entry with the given ticket; it reports whether the
// ticket was found (false means it already woke or was removed).
func (q *WaitQueue[T]) Remove(ticket uint64) bool {
	for i := range q.items {
		if q.items[i].seq == ticket {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// WakeFirst scans waiters in FIFO order and dequeues the first one
// accepted by fits. It returns the woken value, or ok=false when nothing
// fits. This is the admission scan the progress monitor performs when a
// period completes: strictly ordered, so a large early waiter is not
// starved by small late ones slipping past it more than once per scan.
func (q *WaitQueue[T]) WakeFirst(fits func(T) bool) (T, bool) {
	var zero T
	for i := range q.items {
		if fits(q.items[i].v) {
			v := q.items[i].v
			q.items = append(q.items[:i], q.items[i+1:]...)
			return v, true
		}
	}
	return zero, false
}

// WakeAll dequeues every waiter accepted by fits, in FIFO order,
// re-evaluating fits after each wake (capacity shrinks as waiters are
// admitted). It returns the woken values.
func (q *WaitQueue[T]) WakeAll(fits func(T) bool) []T {
	var woken []T
	i := 0
	for i < len(q.items) {
		if fits(q.items[i].v) {
			woken = append(woken, q.items[i].v)
			q.items = append(q.items[:i], q.items[i+1:]...)
		} else {
			i++
		}
	}
	return woken
}

// Drain removes and returns all waiters.
func (q *WaitQueue[T]) Drain() []T {
	out := make([]T, len(q.items))
	for i := range q.items {
		out[i] = q.items[i].v
	}
	q.items = q.items[:0]
	return out
}

func (q *WaitQueue[T]) String() string {
	return fmt.Sprintf("waitqueue(len=%d)", len(q.items))
}
