package sched

import (
	"container/heap"
	"fmt"
)

// Entity is a schedulable entity in the fair run queue. Weight follows
// the CFS convention: higher weight → slower vruntime growth → more CPU.
type Entity struct {
	// Vruntime is the entity's weighted virtual runtime in nanoseconds.
	Vruntime float64
	// Weight is the load weight (Linux nice-0 → 1024).
	Weight int
	index  int
	seq    uint64
}

// NiceZeroWeight is the CFS load weight of a nice-0 task.
const NiceZeroWeight = 1024

// RunQueue is a CFS-style fair run queue: entities are picked in order of
// minimum vruntime, and charged weighted runtime as they execute. It is
// the discrete counterpart of the fluid fair-sharing model in
// internal/machine and drives the quantized validation scheduler.
type RunQueue[T any] struct {
	heap    rqHeap[T]
	seq     uint64
	minVrun float64
}

type rqItem[T any] struct {
	val T
	ent *Entity
}

type rqHeap[T any] []rqItem[T]

func (h rqHeap[T]) Len() int { return len(h) }
func (h rqHeap[T]) Less(i, j int) bool {
	if h[i].ent.Vruntime != h[j].ent.Vruntime {
		return h[i].ent.Vruntime < h[j].ent.Vruntime
	}
	return h[i].ent.seq < h[j].ent.seq
}
func (h rqHeap[T]) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].ent.index = i
	h[j].ent.index = j
}
func (h *rqHeap[T]) Push(x any) {
	it := x.(rqItem[T])
	it.ent.index = len(*h)
	*h = append(*h, it)
}
func (h *rqHeap[T]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	it.ent.index = -1
	var zero rqItem[T]
	old[n-1] = zero
	*h = old[:n-1]
	return it
}

// Len returns the number of queued entities.
func (q *RunQueue[T]) Len() int { return q.heap.Len() }

// Enqueue inserts v with the given entity. New arrivals (zero vruntime)
// are placed at the queue's current minimum so they neither starve the
// queue nor get an unbounded head start — CFS's min_vruntime placement.
func (q *RunQueue[T]) Enqueue(v T, ent *Entity) {
	if ent.Weight <= 0 {
		ent.Weight = NiceZeroWeight
	}
	if ent.Vruntime < q.minVrun {
		ent.Vruntime = q.minVrun
	}
	q.seq++
	ent.seq = q.seq
	heap.Push(&q.heap, rqItem[T]{val: v, ent: ent})
}

// PickNext removes and returns the entity with minimum vruntime.
func (q *RunQueue[T]) PickNext() (T, *Entity, bool) {
	var zero T
	if q.heap.Len() == 0 {
		return zero, nil, false
	}
	it := heap.Pop(&q.heap).(rqItem[T])
	q.minVrun = it.ent.Vruntime
	return it.val, it.ent, true
}

// Charge adds ran nanoseconds of weighted runtime to ent (called after
// the entity ran; re-enqueue it to keep it runnable).
func (q *RunQueue[T]) Charge(ent *Entity, ranNanos float64) {
	if ranNanos < 0 {
		panic(fmt.Sprintf("sched: negative runtime charge %v", ranNanos))
	}
	w := ent.Weight
	if w <= 0 {
		w = NiceZeroWeight
	}
	ent.Vruntime += ranNanos * float64(NiceZeroWeight) / float64(w)
}

// MinVruntime returns the queue's monotonically advancing minimum
// vruntime reference.
func (q *RunQueue[T]) MinVruntime() float64 { return q.minVrun }
