package sched

import (
	"testing"
	"testing/quick"
)

func TestWaitQueueFIFO(t *testing.T) {
	var q WaitQueue[int]
	for i := 0; i < 5; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 5 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = %v,%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue from empty succeeded")
	}
}

func TestWaitQueuePeek(t *testing.T) {
	var q WaitQueue[string]
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	q.Enqueue("a")
	q.Enqueue("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %v,%v", v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("peek removed an item")
	}
}

func TestWaitQueueRemove(t *testing.T) {
	var q WaitQueue[int]
	t1 := q.Enqueue(1)
	t2 := q.Enqueue(2)
	t3 := q.Enqueue(3)
	if !q.Remove(t2) {
		t.Fatal("remove of live ticket failed")
	}
	if q.Remove(t2) {
		t.Fatal("double remove succeeded")
	}
	v, _ := q.Dequeue()
	if v != 1 {
		t.Fatalf("head = %d", v)
	}
	v, _ = q.Dequeue()
	if v != 3 {
		t.Fatalf("second = %d", v)
	}
	_ = t1
	_ = t3
}

func TestWakeFirstOrder(t *testing.T) {
	var q WaitQueue[int]
	for _, v := range []int{10, 3, 7, 2} {
		q.Enqueue(v)
	}
	// First waiter that fits under a budget of 5: 3 (10 is skipped but
	// stays queued).
	v, ok := q.WakeFirst(func(x int) bool { return x <= 5 })
	if !ok || v != 3 {
		t.Fatalf("woke %v,%v; want 3", v, ok)
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	if head, _ := q.Peek(); head != 10 {
		t.Fatalf("head = %d, want 10 still queued", head)
	}
}

func TestWakeFirstNoneFits(t *testing.T) {
	var q WaitQueue[int]
	q.Enqueue(100)
	if _, ok := q.WakeFirst(func(int) bool { return false }); ok {
		t.Fatal("woke a waiter that does not fit")
	}
	if q.Len() != 1 {
		t.Fatal("waiter lost")
	}
}

func TestWakeAllCapacityShrinks(t *testing.T) {
	var q WaitQueue[int]
	for _, v := range []int{4, 4, 4, 4} {
		q.Enqueue(v)
	}
	budget := 10
	woken := q.WakeAll(func(x int) bool {
		if x <= budget {
			budget -= x
			return true
		}
		return false
	})
	if len(woken) != 2 {
		t.Fatalf("woke %d, want 2 (budget 10, items of 4)", len(woken))
	}
	if q.Len() != 2 {
		t.Fatalf("left %d queued", q.Len())
	}
}

func TestDrain(t *testing.T) {
	var q WaitQueue[int]
	for i := 0; i < 3; i++ {
		q.Enqueue(i)
	}
	out := q.Drain()
	if len(out) != 3 || out[0] != 0 || out[2] != 2 {
		t.Fatalf("drain = %v", out)
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty after drain")
	}
}

// Demand-aware aging: AgedFirst picks the highest-priority waiter at or
// above the threshold, ties broken by the oldest ticket.
func TestAgedFirstSelection(t *testing.T) {
	var q WaitQueue[int]
	prios := map[int]float64{1: 0.5, 2: 3.0, 3: 7.0, 4: 7.0}
	prio := func(v int) float64 { return prios[v] }
	t2 := q.Enqueue(1)
	_ = t2
	q.Enqueue(2)
	t3 := q.Enqueue(3)
	q.Enqueue(4)
	v, ticket, ok := q.AgedFirst(1.0, prio)
	if !ok || v != 3 || ticket != t3 {
		t.Fatalf("aged first = %d (ticket %d, ok %v), want 3 at the earlier of the tied tickets", v, ticket, ok)
	}
	// Nothing aged: threshold above every priority.
	if _, _, ok := q.AgedFirst(100, prio); ok {
		t.Fatal("aged waiter found above every priority")
	}
}

// Removing an aged waiter by its ticket behaves like any other removal:
// the next AgedFirst scan settles on the runner-up deterministically.
func TestAgedTicketRemove(t *testing.T) {
	var q WaitQueue[int]
	prio := func(v int) float64 { return float64(v) }
	q.Enqueue(1)
	t9 := q.Enqueue(9)
	t5 := q.Enqueue(5)
	if _, ticket, ok := q.AgedFirst(2, prio); !ok || ticket != t9 {
		t.Fatalf("aged first ticket = %d, want %d", ticket, t9)
	}
	if !q.Remove(t9) {
		t.Fatal("remove of aged ticket failed")
	}
	if v, ticket, ok := q.AgedFirst(2, prio); !ok || v != 5 || ticket != t5 {
		t.Fatalf("after removal aged first = %d (ticket %d), want 5", v, ticket)
	}
}

// Aging is stateless across empty→nonempty transitions: an empty queue
// reports no aged waiter, and a waiter enqueued afterwards ages purely
// from its own priority, with no residue from the drained generation.
func TestAgedAcrossEmptyTransition(t *testing.T) {
	var q WaitQueue[int]
	prio := func(v int) float64 { return float64(v) }
	if _, _, ok := q.AgedFirst(0, prio); ok {
		t.Fatal("aged waiter on an empty queue")
	}
	q.Enqueue(8)
	if v, _, ok := q.AgedFirst(2, prio); !ok || v != 8 {
		t.Fatalf("aged first = %v after refill", v)
	}
	q.Drain()
	if _, _, ok := q.AgedFirst(0, prio); ok {
		t.Fatal("aged waiter survived a drain")
	}
	q.Enqueue(3)
	if v, _, ok := q.AgedFirst(2, prio); !ok || v != 3 {
		t.Fatalf("aged first = %v after empty→nonempty transition", v)
	}
}

// At exactly equal priority the tie-break is the ticket (enqueue order),
// making repeated scans deterministic.
func TestAgedTieBreakDeterminism(t *testing.T) {
	var q WaitQueue[string]
	prio := func(string) float64 { return 4.0 }
	tA := q.Enqueue("a")
	q.Enqueue("b")
	q.Enqueue("c")
	for i := 0; i < 3; i++ {
		if v, ticket, ok := q.AgedFirst(4.0, prio); !ok || v != "a" || ticket != tA {
			t.Fatalf("scan %d: aged first = %q (ticket %d), want \"a\" every time", i, v, ticket)
		}
	}
}

// EnqueueAs restores a dequeued waiter to its original FIFO position.
func TestEnqueueAsRestoresPosition(t *testing.T) {
	var q WaitQueue[int]
	q.Enqueue(1)
	t2 := q.Enqueue(2)
	q.Enqueue(3)
	if !q.Remove(t2) {
		t.Fatal("remove failed")
	}
	q.EnqueueAs(2, t2)
	for want := 1; want <= 3; want++ {
		if v, ok := q.Dequeue(); !ok || v != want {
			t.Fatalf("dequeue = %v, want %d", v, want)
		}
	}
}

// EnqueueAs panics on tickets that were never issued or are still live.
func TestEnqueueAsPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	var q WaitQueue[int]
	live := q.Enqueue(1)
	expectPanic("unissued ticket", func() { q.EnqueueAs(9, live+7) })
	expectPanic("live ticket", func() { q.EnqueueAs(9, live) })
}

// Property: enqueue/dequeue preserves FIFO order for arbitrary sequences.
func TestWaitQueueFIFOProperty(t *testing.T) {
	f := func(vals []int) bool {
		var q WaitQueue[int]
		for _, v := range vals {
			q.Enqueue(v)
		}
		for _, v := range vals {
			got, ok := q.Dequeue()
			if !ok || got != v {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaitQueueString(t *testing.T) {
	var q WaitQueue[int]
	q.Enqueue(1)
	if q.String() != "waitqueue(len=1)" {
		t.Fatalf("String = %q", q.String())
	}
}

func TestRunQueuePickMinVruntime(t *testing.T) {
	var q RunQueue[string]
	a := &Entity{Vruntime: 30, Weight: NiceZeroWeight}
	b := &Entity{Vruntime: 10, Weight: NiceZeroWeight}
	c := &Entity{Vruntime: 20, Weight: NiceZeroWeight}
	q.Enqueue("a", a)
	q.Enqueue("b", b)
	q.Enqueue("c", c)
	order := []string{}
	for {
		v, _, ok := q.PickNext()
		if !ok {
			break
		}
		order = append(order, v)
	}
	if order[0] != "b" || order[1] != "c" || order[2] != "a" {
		t.Fatalf("order = %v", order)
	}
}

func TestRunQueueFairnessOverTime(t *testing.T) {
	// Two equal-weight entities picked repeatedly for fixed slices end up
	// with equal total runtime (alternation).
	var q RunQueue[int]
	ents := []*Entity{{Weight: NiceZeroWeight}, {Weight: NiceZeroWeight}}
	total := [2]float64{}
	q.Enqueue(0, ents[0])
	q.Enqueue(1, ents[1])
	for i := 0; i < 100; i++ {
		v, e, ok := q.PickNext()
		if !ok {
			t.Fatal("queue empty")
		}
		q.Charge(e, 1000) // 1 µs slice
		total[v] += 1000
		q.Enqueue(v, e)
	}
	if total[0] != total[1] {
		t.Fatalf("unequal runtime: %v vs %v", total[0], total[1])
	}
}

func TestRunQueueWeightedShares(t *testing.T) {
	// Weight 2048 should receive ~2x the runtime of weight 1024.
	var q RunQueue[int]
	heavy := &Entity{Weight: 2 * NiceZeroWeight}
	light := &Entity{Weight: NiceZeroWeight}
	q.Enqueue(0, heavy)
	q.Enqueue(1, light)
	total := [2]float64{}
	for i := 0; i < 3000; i++ {
		v, e, _ := q.PickNext()
		q.Charge(e, 1000)
		total[v] += 1000
		q.Enqueue(v, e)
	}
	ratio := total[0] / total[1]
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("heavy/light runtime ratio = %v, want ~2", ratio)
	}
}

func TestRunQueueNewArrivalPlacement(t *testing.T) {
	var q RunQueue[int]
	old := &Entity{Weight: NiceZeroWeight}
	q.Enqueue(0, old)
	for i := 0; i < 10; i++ {
		_, e, _ := q.PickNext()
		q.Charge(e, 1e6)
		q.Enqueue(0, e)
	}
	// A new arrival with zero vruntime must not monopolize: its vruntime
	// is bumped to the queue minimum.
	fresh := &Entity{Weight: NiceZeroWeight}
	q.Enqueue(1, fresh)
	if fresh.Vruntime < q.MinVruntime() {
		t.Fatalf("fresh vruntime %v below queue min %v", fresh.Vruntime, q.MinVruntime())
	}
}

func TestRunQueueChargePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var q RunQueue[int]
	q.Charge(&Entity{Weight: 1024}, -1)
}

func TestRunQueueZeroWeightDefaults(t *testing.T) {
	var q RunQueue[int]
	e := &Entity{}
	q.Enqueue(0, e)
	if e.Weight != NiceZeroWeight {
		t.Fatalf("weight = %d, want default %d", e.Weight, NiceZeroWeight)
	}
	q.Charge(e, 1024)
	if e.Vruntime != 1024 {
		t.Fatalf("vruntime = %v", e.Vruntime)
	}
}

func TestRunQueueEmptyPick(t *testing.T) {
	var q RunQueue[int]
	if _, _, ok := q.PickNext(); ok {
		t.Fatal("pick from empty succeeded")
	}
}
