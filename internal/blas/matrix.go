package blas

import (
	"fmt"

	"rdasched/internal/sim"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("blas: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice view.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equal reports element-wise equality within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}

// FillRandom fills with uniform values in [-1, 1) from a deterministic
// generator.
func (m *Matrix) FillRandom(rng *sim.RNG) {
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
}

// FillIdentity writes the identity (square matrices only).
func (m *Matrix) FillIdentity() {
	if m.Rows != m.Cols {
		panic("blas: identity of non-square matrix")
	}
	for i := range m.Data {
		m.Data[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		m.Set(i, i, 1)
	}
}

// LowerTriangular zeroes the strict upper triangle and ensures a
// well-conditioned diagonal (|d| ≥ 1), for dtrsv/dtrsm tests.
func (m *Matrix) LowerTriangular() {
	if m.Rows != m.Cols {
		panic("blas: triangular view of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			m.Set(i, j, 0)
		}
		d := m.At(i, i)
		if d >= 0 {
			m.Set(i, i, d+1)
		} else {
			m.Set(i, i, d-1)
		}
	}
}

// UpperTriangular zeroes the strict lower triangle and conditions the
// diagonal.
func (m *Matrix) UpperTriangular() {
	if m.Rows != m.Cols {
		panic("blas: triangular view of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < i; j++ {
			m.Set(i, j, 0)
		}
		d := m.At(i, i)
		if d >= 0 {
			m.Set(i, i, d+1)
		} else {
			m.Set(i, i, d-1)
		}
	}
}

// NewRandomMatrix allocates and fills a matrix.
func NewRandomMatrix(rows, cols int, seed uint64) *Matrix {
	m := NewMatrix(rows, cols)
	m.FillRandom(sim.NewRNG(seed))
	return m
}

// NewRandomVector allocates and fills a vector.
func NewRandomVector(n int, seed uint64) []float64 {
	rng := sim.NewRNG(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}
