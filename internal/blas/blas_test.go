package blas

import (
	"math"
	"testing"
	"testing/quick"

	"rdasched/internal/sim"
)

const tol = 1e-9

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Daxpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestDcopyDswap(t *testing.T) {
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	Dcopy(x, y)
	if y[0] != 1 || y[2] != 3 {
		t.Fatalf("copy: %v", y)
	}
	a := []float64{1, 2}
	b := []float64{3, 4}
	Dswap(a, b)
	if a[0] != 3 || b[1] != 2 {
		t.Fatalf("swap: %v %v", a, b)
	}
}

func TestDscal(t *testing.T) {
	x := []float64{1, -2, 4}
	Dscal(-0.5, x)
	if x[0] != -0.5 || x[1] != 1 || x[2] != -2 {
		t.Fatalf("x = %v", x)
	}
}

func TestDdotAndNorm(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Ddot(x, y); got != 32 {
		t.Fatalf("ddot = %v", got)
	}
	if got := Dnrm2Sq(x); got != 14 {
		t.Fatalf("nrm2sq = %v", got)
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Daxpy(1, []float64{1}, []float64{1, 2})
}

func TestDaxpyInverseProperty(t *testing.T) {
	// Property: daxpy(-a, x, daxpy(a, x, y)) == y.
	f := func(seed uint64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		x := NewRandomVector(64, seed)
		y := NewRandomVector(64, seed+1)
		orig := make([]float64, 64)
		copy(orig, y)
		Daxpy(alpha, x, y)
		Daxpy(-alpha, x, y)
		for i := range y {
			if math.Abs(y[i]-orig[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDswapInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		a := NewRandomVector(32, seed)
		b := NewRandomVector(32, seed+7)
		a0 := append([]float64(nil), a...)
		b0 := append([]float64(nil), b...)
		Dswap(a, b)
		Dswap(a, b)
		for i := range a {
			if a[i] != a0[i] || b[i] != b0[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set broken")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 5 {
		t.Fatal("Row broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone shares storage")
	}
	if !m.Equal(m.Clone(), 0) {
		t.Fatal("Equal(self) false")
	}
	if m.Equal(NewMatrix(3, 2), 0) {
		t.Fatal("Equal across shapes")
	}
}

func TestIdentityAndTriangular(t *testing.T) {
	m := NewRandomMatrix(4, 4, 1)
	m.FillIdentity()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("identity (%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
	l := NewRandomMatrix(5, 5, 2)
	l.LowerTriangular()
	for i := 0; i < 5; i++ {
		if math.Abs(l.At(i, i)) < 1 {
			t.Fatal("ill-conditioned diagonal")
		}
		for j := i + 1; j < 5; j++ {
			if l.At(i, j) != 0 {
				t.Fatal("upper triangle not cleared")
			}
		}
	}
	u := NewRandomMatrix(5, 5, 3)
	u.UpperTriangular()
	for i := 0; i < 5; i++ {
		for j := 0; j < i; j++ {
			if u.At(i, j) != 0 {
				t.Fatal("lower triangle not cleared")
			}
		}
	}
}

func TestDgemvNAgainstManual(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 1, 1}
	y := []float64{10, 10}
	DgemvN(2, a, x, 0.5, y)
	// y0 = 2*6 + 5 = 17; y1 = 2*15 + 5 = 35
	if y[0] != 17 || y[1] != 35 {
		t.Fatalf("y = %v", y)
	}
}

func TestDgemvTMatchesExplicitTranspose(t *testing.T) {
	rng := sim.NewRNG(5)
	a := NewRandomMatrix(7, 4, rng.Uint64())
	x := NewRandomVector(7, rng.Uint64())
	y1 := NewRandomVector(4, rng.Uint64())
	y2 := append([]float64(nil), y1...)

	DgemvT(1.5, a, x, 0.25, y1)

	// Explicit transpose + dgemvN.
	at := NewMatrix(4, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 4; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	DgemvN(1.5, at, x, 0.25, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > tol {
			t.Fatalf("dgemvT mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestDtrmvDtrsvRoundTrip(t *testing.T) {
	// Solve then multiply must return the original vector.
	l := NewRandomMatrix(16, 16, 9)
	l.LowerTriangular()
	b := NewRandomVector(16, 10)
	orig := append([]float64(nil), b...)
	Dtrsv(l, b) // b = L⁻¹ orig
	Dtrmv(l, b) // b = L L⁻¹ orig = orig
	for i := range b {
		if math.Abs(b[i]-orig[i]) > 1e-8 {
			t.Fatalf("round trip off at %d: %v vs %v", i, b[i], orig[i])
		}
	}
}

func TestDgemmSmallKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	c := NewMatrix(2, 2)
	Dgemm(1, a, b, 0, c)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("c = %v, want %v", c.Data, want)
		}
	}
}

func TestDgemmBetaScaling(t *testing.T) {
	a := NewRandomMatrix(3, 3, 1)
	b := NewRandomMatrix(3, 3, 2)
	c := NewRandomMatrix(3, 3, 3)
	ref := c.Clone()
	Dgemm(0, a, b, 2, c) // pure scaling
	for i := range c.Data {
		if math.Abs(c.Data[i]-2*ref.Data[i]) > tol {
			t.Fatal("beta scaling wrong")
		}
	}
}

func TestDgemmBlockedMatchesReference(t *testing.T) {
	for _, n := range []int{1, 7, 16, 33, 64, 100} {
		for _, bs := range []int{0, 4, 16, 128} {
			a := NewRandomMatrix(n, n, uint64(n))
			b := NewRandomMatrix(n, n, uint64(n)+1)
			c := NewRandomMatrix(n, n, uint64(n)+2)
			ref := c.Clone()
			Dgemm(1.25, a, b, 0.5, ref)
			DgemmBlocked(1.25, a, b, 0.5, c, bs)
			if !c.Equal(ref, 1e-8) {
				t.Fatalf("blocked dgemm (n=%d, bs=%d) diverges from reference", n, bs)
			}
		}
	}
}

func TestDgemmRectangular(t *testing.T) {
	a := NewRandomMatrix(5, 8, 1)
	b := NewRandomMatrix(8, 3, 2)
	c := NewMatrix(5, 3)
	ref := NewMatrix(5, 3)
	Dgemm(1, a, b, 0, ref)
	DgemmBlocked(1, a, b, 0, c, 4)
	if !c.Equal(ref, 1e-9) {
		t.Fatal("rectangular blocked dgemm wrong")
	}
}

func TestDgemmShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	Dgemm(1, NewMatrix(2, 3), NewMatrix(2, 3), 0, NewMatrix(2, 3))
}

func TestDsyrkSymmetricAndCorrect(t *testing.T) {
	a := NewRandomMatrix(9, 5, 4)
	c := NewMatrix(9, 9)
	Dsyrk(1, a, 0, c)
	// Reference: full dgemm with explicit transpose.
	at := NewMatrix(5, 9)
	for i := 0; i < 9; i++ {
		for j := 0; j < 5; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	ref := NewMatrix(9, 9)
	Dgemm(1, a, at, 0, ref)
	if !c.Equal(ref, 1e-8) {
		t.Fatal("dsyrk != A·Aᵀ")
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if math.Abs(c.At(i, j)-c.At(j, i)) > tol {
				t.Fatal("dsyrk result not symmetric")
			}
		}
	}
}

func TestDtrmmDtrsmRoundTrip(t *testing.T) {
	// X·U then solve-right by U must return X.
	u := NewRandomMatrix(12, 12, 6)
	u.UpperTriangular()
	b := NewRandomMatrix(8, 12, 7)
	orig := b.Clone()
	DtrmmRU(b, u)
	DtrsmRU(b, u)
	if !b.Equal(orig, 1e-7) {
		t.Fatal("dtrmm/dtrsm round trip failed")
	}
}

func TestDtrmmAgainstDgemm(t *testing.T) {
	u := NewRandomMatrix(10, 10, 8)
	u.UpperTriangular()
	b := NewRandomMatrix(4, 10, 9)
	ref := NewMatrix(4, 10)
	Dgemm(1, b, u, 0, ref)
	DtrmmRU(b, u)
	if !b.Equal(ref, 1e-8) {
		t.Fatal("dtrmm(ru) != B·U")
	}
}

func TestFlopCounts(t *testing.T) {
	if Level1Flops("daxpy", 100) != 200 {
		t.Fatal("daxpy flops")
	}
	if Level1Flops("dcopy", 100) != 0 {
		t.Fatal("dcopy flops")
	}
	if Level2Flops("dgemvN", 10) != 200 {
		t.Fatal("dgemv flops")
	}
	if Level3Flops("dgemm", 10) != 2000 {
		t.Fatal("dgemm flops")
	}
	if Level3Flops("dsyrk", 10) != 1100 {
		t.Fatal("dsyrk flops")
	}
	for _, fn := range []func(){
		func() { Level1Flops("nope", 1) },
		func() { Level2Flops("nope", 1) },
		func() { Level3Flops("nope", 1) },
	} {
		func() {
			defer func() { _ = recover() }()
			fn()
			t.Fatal("unknown kernel did not panic")
		}()
	}
}

func BenchmarkDgemmNaive256(b *testing.B) {
	a := NewRandomMatrix(256, 256, 1)
	bb := NewRandomMatrix(256, 256, 2)
	c := NewMatrix(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemm(1, a, bb, 0, c)
	}
}

func BenchmarkDgemmBlocked256(b *testing.B) {
	a := NewRandomMatrix(256, 256, 1)
	bb := NewRandomMatrix(256, 256, 2)
	c := NewMatrix(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DgemmBlocked(1, a, bb, 0, c, 64)
	}
}
