package blas

import "fmt"

// DgemvN computes y ← alpha·A·x + beta·y (no transpose).
func DgemvN(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if a.Cols != len(x) || a.Rows != len(y) {
		panic(fmt.Sprintf("blas: dgemvN shape %dx%d · %d → %d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = alpha*s + beta*y[i]
	}
}

// DgemvT computes y ← alpha·Aᵀ·x + beta·y.
func DgemvT(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if a.Rows != len(x) || a.Cols != len(y) {
		panic(fmt.Sprintf("blas: dgemvT shape %dx%dᵀ · %d → %d", a.Rows, a.Cols, len(x), len(y)))
	}
	for j := range y {
		y[j] *= beta
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		xi := alpha * x[i]
		for j, v := range row {
			y[j] += xi * v
		}
	}
}

// Dtrmv computes x ← L·x for a lower-triangular L (in-place, walking rows
// bottom-up so inputs are consumed before they are overwritten).
func Dtrmv(l *Matrix, x []float64) {
	if l.Rows != l.Cols || l.Rows != len(x) {
		panic(fmt.Sprintf("blas: dtrmv shape %dx%d · %d", l.Rows, l.Cols, len(x)))
	}
	for i := l.Rows - 1; i >= 0; i-- {
		row := l.Row(i)
		var s float64
		for j := 0; j <= i; j++ {
			s += row[j] * x[j]
		}
		x[i] = s
	}
}

// Dtrsv solves L·x = b for lower-triangular L, overwriting b with x
// (forward substitution).
func Dtrsv(l *Matrix, b []float64) {
	if l.Rows != l.Cols || l.Rows != len(b) {
		panic(fmt.Sprintf("blas: dtrsv shape %dx%d · %d", l.Rows, l.Cols, len(b)))
	}
	for i := 0; i < l.Rows; i++ {
		row := l.Row(i)
		s := b[i]
		for j := 0; j < i; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
}

// Level2Flops returns the flop count of one level-2 kernel on an n×n
// operand.
func Level2Flops(kernel string, n int) float64 {
	fn := float64(n)
	switch kernel {
	case "dgemvN", "dgemvT":
		return 2 * fn * fn
	case "dtrmv", "dtrsv":
		return fn * fn
	default:
		panic("blas: unknown level-2 kernel " + kernel)
	}
}
