// Package blas implements the twelve dense linear-algebra kernels the
// paper's BLAS workloads run (Table 2): the level-1 vector kernels daxpy,
// dcopy, dscal, dswap; the level-2 matrix-vector kernels dgemv (N and T),
// dtrmv, dtrsv; and the level-3 matrix-matrix kernels dgemm, dsyrk, dtrmm,
// dtrsm. Matrices are dense, row-major, float64.
//
// Two uses: the example programs execute them for real (quickstart runs an
// actual DGEMM inside a progress period, like the paper's Figure 4), and
// internal/workloads derives each kernel's phase parameters — working-set
// size, flops per instruction, reuse level — from these definitions.
//
// Level-3 kernels include cache-blocked variants, matching the paper's
// setup where "each BLAS kernel ... has been optimized with loop blocking
// so that individually its working set size fits within the last-level
// cache".
package blas

import "fmt"

// Daxpy computes y ← alpha·x + y.
func Daxpy(alpha float64, x, y []float64) {
	checkVecs("daxpy", x, y)
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Dcopy copies x into y.
func Dcopy(x, y []float64) {
	checkVecs("dcopy", x, y)
	copy(y, x)
}

// Dscal scales x in place: x ← alpha·x.
func Dscal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dswap exchanges x and y element-wise.
func Dswap(x, y []float64) {
	checkVecs("dswap", x, y)
	for i := range x {
		x[i], y[i] = y[i], x[i]
	}
}

// Ddot returns xᵀy (used by tests and the tuned dgemm micro-kernel).
func Ddot(x, y []float64) float64 {
	checkVecs("ddot", x, y)
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Dnrm2Sq returns ‖x‖² (squared Euclidean norm; avoids the sqrt so the
// package stays allocation- and math-import-free on the hot path).
func Dnrm2Sq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func checkVecs(op string, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("blas: %s: length mismatch %d vs %d", op, len(x), len(y)))
	}
}

// Level1Flops returns the flop count of one level-1 kernel invocation on
// n elements.
func Level1Flops(kernel string, n int) float64 {
	switch kernel {
	case "daxpy":
		return 2 * float64(n)
	case "dscal":
		return float64(n)
	case "dcopy", "dswap":
		return 0
	case "ddot":
		return 2 * float64(n)
	default:
		panic("blas: unknown level-1 kernel " + kernel)
	}
}
