package blas

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdamax(t *testing.T) {
	cases := []struct {
		x    []float64
		want int
	}{
		{nil, -1},
		{[]float64{3}, 0},
		{[]float64{1, -5, 2}, 1},
		{[]float64{2, -2, 2}, 0}, // ties → lowest index
		{[]float64{0, 0, 0.1}, 2},
	}
	for _, c := range cases {
		if got := Idamax(c.x); got != c.want {
			t.Errorf("Idamax(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestDasum(t *testing.T) {
	if got := Dasum([]float64{1, -2, 3}); got != 6 {
		t.Fatalf("Dasum = %v", got)
	}
	if Dasum(nil) != 0 {
		t.Fatal("Dasum(nil) != 0")
	}
}

func TestDrotPreservesNorm(t *testing.T) {
	f := func(seed uint64, theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		c, s := math.Cos(theta), math.Sin(theta)
		x := NewRandomVector(16, seed)
		y := NewRandomVector(16, seed+1)
		before := Dnrm2Sq(x) + Dnrm2Sq(y)
		Drot(x, y, c, s)
		after := Dnrm2Sq(x) + Dnrm2Sq(y)
		return math.Abs(before-after) < 1e-9*(1+before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDrotgZeroesSecondComponent(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e150 || math.Abs(b) > 1e150 {
			return true
		}
		c, s, r := Drotg(a, b)
		// Applying the rotation to (a, b) must produce (r, 0).
		x := []float64{a}
		y := []float64{b}
		Drot(x, y, c, s)
		tol := 1e-9 * (1 + math.Abs(r))
		return math.Abs(x[0]-r) < tol && math.Abs(y[0]) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDrotgEdgeCases(t *testing.T) {
	if c, s, r := Drotg(0, 0); c != 1 || s != 0 || r != 0 {
		t.Fatal("Drotg(0,0) wrong")
	}
	if c, s, r := Drotg(5, 0); c != 1 || s != 0 || r != 5 {
		t.Fatal("Drotg(a,0) wrong")
	}
	if c, s, r := Drotg(0, 3); c != 0 || s != 1 || r != 3 {
		t.Fatal("Drotg(0,b) wrong")
	}
}

func TestDgerMatchesDgemm(t *testing.T) {
	x := NewRandomVector(5, 1)
	y := NewRandomVector(7, 2)
	a := NewRandomMatrix(5, 7, 3)
	want := a.Clone()

	// Reference: x·yᵀ as a 5×1 · 1×7 dgemm.
	xm := NewMatrix(5, 1)
	copy(xm.Data, x)
	ym := NewMatrix(1, 7)
	copy(ym.Data, y)
	Dgemm(2.5, xm, ym, 1, want)

	Dger(2.5, x, y, a)
	if !a.Equal(want, 1e-10) {
		t.Fatal("dger != dgemm rank-1")
	}
}

func TestDsymvMatchesGemvOnSymmetric(t *testing.T) {
	a := NewRandomMatrix(8, 8, 4)
	// Symmetrize.
	for i := 0; i < 8; i++ {
		for j := 0; j < i; j++ {
			a.Set(j, i, a.At(i, j))
		}
	}
	x := NewRandomVector(8, 5)
	y1 := NewRandomVector(8, 6)
	y2 := append([]float64(nil), y1...)
	Dsymv(1.5, a, x, 0.5, y1)
	DgemvN(1.5, a, x, 0.5, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatal("dsymv diverged")
		}
	}
}

func TestDsyrSymmetric(t *testing.T) {
	a := NewMatrix(6, 6)
	x := NewRandomVector(6, 7)
	Dsyr(2, x, a)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-12 {
				t.Fatal("dsyr result not symmetric")
			}
			want := 2 * x[i] * x[j]
			if math.Abs(a.At(i, j)-want) > 1e-12 {
				t.Fatalf("dsyr (%d,%d) = %v, want %v", i, j, a.At(i, j), want)
			}
		}
	}
}

func TestDsyr2kMatchesExplicit(t *testing.T) {
	a := NewRandomMatrix(6, 4, 8)
	b := NewRandomMatrix(6, 4, 9)
	c := NewMatrix(6, 6)
	Dsyr2k(1.5, a, b, 0, c)

	// Reference: alpha·(A·Bᵀ + B·Aᵀ) via explicit transposes.
	bt := NewMatrix(4, 6)
	at := NewMatrix(4, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			bt.Set(j, i, b.At(i, j))
			at.Set(j, i, a.At(i, j))
		}
	}
	ref := NewMatrix(6, 6)
	Dgemm(1.5, a, bt, 0, ref)
	Dgemm(1.5, b, at, 1, ref)
	if !c.Equal(ref, 1e-9) {
		t.Fatal("dsyr2k != alpha(ABᵀ + BAᵀ)")
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if math.Abs(c.At(i, j)-c.At(j, i)) > 1e-12 {
				t.Fatal("dsyr2k not symmetric")
			}
		}
	}
}

func TestDgemmTNMatchesExplicitTranspose(t *testing.T) {
	a := NewRandomMatrix(5, 3, 10) // k=5, m=3
	b := NewRandomMatrix(5, 4, 11) // k=5, n=4
	c := NewRandomMatrix(3, 4, 12)
	ref := c.Clone()

	at := NewMatrix(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	Dgemm(2, at, b, 0.5, ref)
	DgemmTN(2, a, b, 0.5, c)
	if !c.Equal(ref, 1e-10) {
		t.Fatal("dgemmTN diverged from explicit transpose")
	}
}

func TestExtraShapePanics(t *testing.T) {
	fns := []func(){
		func() { Dger(1, []float64{1}, []float64{1}, NewMatrix(2, 2)) },
		func() { Dsymv(1, NewMatrix(2, 3), []float64{1, 1, 1}, 0, []float64{1, 1}) },
		func() { Dsyr(1, []float64{1}, NewMatrix(2, 2)) },
		func() { Dsyr2k(1, NewMatrix(2, 3), NewMatrix(2, 4), 0, NewMatrix(2, 2)) },
		func() { DgemmTN(1, NewMatrix(2, 3), NewMatrix(3, 4), 0, NewMatrix(3, 4)) },
	}
	for i, fn := range fns {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
