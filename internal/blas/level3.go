package blas

import "fmt"

// Dgemm computes C ← alpha·A·B + beta·C with the classic three-loop form
// (the reference implementation blocked variants are tested against).
func Dgemm(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		panic(fmt.Sprintf("blas: dgemm shape %dx%d · %dx%d → %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	for i := 0; i < c.Rows; i++ {
		ci := c.Row(i)
		for j := range ci {
			ci[j] *= beta
		}
		ai := a.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := alpha * ai[k]
			bk := b.Row(k)
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// DgemmBlocked computes C ← alpha·A·B + beta·C with three-level loop
// blocking so the touched panels fit in cache — the form the paper's
// BLAS-3 workloads use. blockSize ≤ 0 selects a default of 64.
func DgemmBlocked(alpha float64, a, b *Matrix, beta float64, c *Matrix, blockSize int) {
	if a.Cols != b.Rows || a.Rows != c.Rows || b.Cols != c.Cols {
		panic(fmt.Sprintf("blas: dgemm shape %dx%d · %dx%d → %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	bs := blockSize
	if bs <= 0 {
		bs = 64
	}
	for i := range c.Data {
		c.Data[i] *= beta
	}
	n, m, k := c.Rows, c.Cols, a.Cols
	for i0 := 0; i0 < n; i0 += bs {
		i1 := min(i0+bs, n)
		for k0 := 0; k0 < k; k0 += bs {
			k1 := min(k0+bs, k)
			for j0 := 0; j0 < m; j0 += bs {
				j1 := min(j0+bs, m)
				for i := i0; i < i1; i++ {
					ci := c.Row(i)
					ai := a.Row(i)
					for kk := k0; kk < k1; kk++ {
						aik := alpha * ai[kk]
						bk := b.Row(kk)
						for j := j0; j < j1; j++ {
							ci[j] += aik * bk[j]
						}
					}
				}
			}
		}
	}
}

// Dsyrk computes C ← alpha·A·Aᵀ + beta·C, updating the full symmetric
// result (both triangles).
func Dsyrk(alpha float64, a *Matrix, beta float64, c *Matrix) {
	if c.Rows != c.Cols || a.Rows != c.Rows {
		panic(fmt.Sprintf("blas: dsyrk shape %dx%d → %dx%d", a.Rows, a.Cols, c.Rows, c.Cols))
	}
	for i := 0; i < c.Rows; i++ {
		ai := a.Row(i)
		ci := c.Row(i)
		for j := 0; j <= i; j++ {
			s := Ddot(ai, a.Row(j))
			v := alpha*s + beta*ci[j]
			ci[j] = v
			c.Set(j, i, v)
		}
	}
}

// DtrmmRU computes B ← B·U for upper-triangular U (right side, upper —
// the paper's dtrmm(ru) variant). Columns are consumed right-to-left so
// the update is safely in place.
func DtrmmRU(b, u *Matrix) {
	if u.Rows != u.Cols || b.Cols != u.Rows {
		panic(fmt.Sprintf("blas: dtrmm(ru) shape %dx%d · %dx%d", b.Rows, b.Cols, u.Rows, u.Cols))
	}
	for i := 0; i < b.Rows; i++ {
		bi := b.Row(i)
		for j := b.Cols - 1; j >= 0; j-- {
			var s float64
			for k := 0; k <= j; k++ {
				s += bi[k] * u.At(k, j)
			}
			bi[j] = s
		}
	}
}

// DtrsmRU solves X·U = B for upper-triangular U (right side, upper — the
// paper's dtrsm(ru) variant), overwriting B with X.
func DtrsmRU(b, u *Matrix) {
	if u.Rows != u.Cols || b.Cols != u.Rows {
		panic(fmt.Sprintf("blas: dtrsm(ru) shape %dx%d · %dx%d", b.Rows, b.Cols, u.Rows, u.Cols))
	}
	for i := 0; i < b.Rows; i++ {
		bi := b.Row(i)
		for j := 0; j < b.Cols; j++ {
			s := bi[j]
			for k := 0; k < j; k++ {
				s -= bi[k] * u.At(k, j)
			}
			bi[j] = s / u.At(j, j)
		}
	}
}

// Level3Flops returns the flop count of one level-3 kernel on n×n
// operands.
func Level3Flops(kernel string, n int) float64 {
	fn := float64(n)
	switch kernel {
	case "dgemm":
		return 2 * fn * fn * fn
	case "dsyrk":
		return fn * fn * (fn + 1)
	case "dtrmm", "dtrsm":
		return fn * fn * fn
	default:
		panic("blas: unknown level-3 kernel " + kernel)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
