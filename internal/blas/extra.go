package blas

import (
	"fmt"
	"math"
)

// Additional kernels rounding out the BLAS levels beyond the twelve the
// paper's workloads use — included so the library is adoptable as a
// small pure-Go BLAS, and exercised by the property-test suite.

// Idamax returns the index of the element with the largest absolute
// value (-1 for an empty vector). Ties resolve to the lowest index,
// matching reference BLAS.
func Idamax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := math.Abs(x[0]), 0
	for i := 1; i < len(x); i++ {
		if a := math.Abs(x[i]); a > best {
			best, bi = a, i
		}
	}
	return bi
}

// Dasum returns Σ|xᵢ|.
func Dasum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Drot applies a plane rotation: (xᵢ, yᵢ) ← (c·xᵢ + s·yᵢ, c·yᵢ − s·xᵢ).
func Drot(x, y []float64, c, s float64) {
	checkVecs("drot", x, y)
	for i := range x {
		xi, yi := x[i], y[i]
		x[i] = c*xi + s*yi
		y[i] = c*yi - s*xi
	}
}

// Drotg computes the Givens rotation (c, s) zeroing b against a,
// returning c, s, and r = ±√(a²+b²) (the BLAS reference convention with
// the sign of the larger component).
func Drotg(a, b float64) (c, s, r float64) {
	if b == 0 {
		if a == 0 {
			return 1, 0, 0
		}
		return 1, 0, a
	}
	if a == 0 {
		return 0, 1, b
	}
	sigma := 1.0
	if math.Abs(a) > math.Abs(b) {
		if a < 0 {
			sigma = -1
		}
	} else if b < 0 {
		sigma = -1
	}
	r = sigma * math.Sqrt(a*a+b*b)
	return a / r, b / r, r
}

// Dger performs the rank-1 update A ← A + alpha·x·yᵀ.
func Dger(alpha float64, x, y []float64, a *Matrix) {
	if a.Rows != len(x) || a.Cols != len(y) {
		panic(fmt.Sprintf("blas: dger shape %dx%d vs %d,%d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		axi := alpha * x[i]
		for j := range ai {
			ai[j] += axi * y[j]
		}
	}
}

// Dsymv computes y ← alpha·A·x + beta·y for symmetric A (full storage;
// only consistency with symmetry is assumed, not checked).
func Dsymv(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if a.Rows != a.Cols || a.Rows != len(x) || len(x) != len(y) {
		panic(fmt.Sprintf("blas: dsymv shape %dx%d vs %d,%d", a.Rows, a.Cols, len(x), len(y)))
	}
	DgemvN(alpha, a, x, beta, y)
}

// Dsyr performs the symmetric rank-1 update A ← A + alpha·x·xᵀ,
// maintaining both triangles.
func Dsyr(alpha float64, x []float64, a *Matrix) {
	if a.Rows != a.Cols || a.Rows != len(x) {
		panic(fmt.Sprintf("blas: dsyr shape %dx%d vs %d", a.Rows, a.Cols, len(x)))
	}
	for i := range x {
		ai := a.Row(i)
		axi := alpha * x[i]
		for j := range x {
			ai[j] += axi * x[j]
		}
	}
}

// Dsyr2k computes C ← alpha·(A·Bᵀ + B·Aᵀ) + beta·C for n×k A and B,
// producing a symmetric n×n result.
func Dsyr2k(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if c.Rows != c.Cols || a.Rows != c.Rows || b.Rows != c.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("blas: dsyr2k shape %dx%d, %dx%d → %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n := c.Rows
	for i := 0; i < n; i++ {
		ci := c.Row(i)
		for j := 0; j <= i; j++ {
			s := Ddot(a.Row(i), b.Row(j)) + Ddot(b.Row(i), a.Row(j))
			v := alpha*s + beta*ci[j]
			ci[j] = v
			c.Set(j, i, v)
		}
	}
}

// DgemmTN computes C ← alpha·Aᵀ·B + beta·C (A is k×m, B is k×n, C m×n) —
// the transpose-first variant common in least-squares inner loops.
func DgemmTN(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Rows != b.Rows || a.Cols != c.Rows || b.Cols != c.Cols {
		panic(fmt.Sprintf("blas: dgemmTN shape %dx%dᵀ · %dx%d → %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	for i := range c.Data {
		c.Data[i] *= beta
	}
	for k := 0; k < a.Rows; k++ {
		ak := a.Row(k)
		bk := b.Row(k)
		for i, aki := range ak {
			ci := c.Row(i)
			v := alpha * aki
			for j := range bk {
				ci[j] += v * bk[j]
			}
		}
	}
}
