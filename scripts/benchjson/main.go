// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON artifact (BENCH_8.json) and validates such
// artifacts, so CI can publish and check benchmark numbers with the Go
// toolchain alone.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./scripts/benchjson -o BENCH_10.json
//	go run ./scripts/benchjson -check BENCH_10.json
//	go run ./scripts/benchjson -diff BENCH_8.json BENCH_10.json
//
// -diff compares two artifacts benchmark by benchmark and exits
// non-zero when any shared benchmark's ns/op regressed by more than
// the -threshold (default 10%). Benchmarks present in only one
// artifact are reported but never fail the diff, so adding or
// retiring a benchmark does not break the gate.
//
// The converter reads benchmark result lines of the standard form
//
//	BenchmarkName-8   100   123456 ns/op   7 B/op   0 allocs/op   1.5 custom-unit
//
// and records every (value, unit) metric pair per benchmark. Context
// lines (goos/goarch/pkg/cpu) are carried along so the artifact is
// self-describing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Doc is the BENCH_8.json schema.
type Doc struct {
	Version    int               `json:"version"`
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Benchmark is one result line: the benchmark name (with the -N procs
// suffix stripped), its iteration count, and every reported metric.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var (
		out       = flag.String("o", "", "write the JSON artifact to this file (default stdout)")
		check     = flag.String("check", "", "validate an existing artifact instead of converting")
		diff      = flag.Bool("diff", false, "compare two artifacts (old new); exit non-zero on ns/op regressions past -threshold")
		threshold = flag.Float64("threshold", 0.10, "relative ns/op regression that fails -diff (0.10 = 10%)")
	)
	flag.Parse()

	if *check != "" {
		if err := validate(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *check, err)
			os.Exit(1)
		}
		return
	}
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two artifacts: old.json new.json")
			os.Exit(2)
		}
		regressions, err := diffArtifacts(flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%\n",
				regressions, *threshold*100)
			os.Exit(1)
		}
		return
	}

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
	}
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Version: 1, Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				if key == "pkg" {
					pkg = v
				} else {
					doc.Context[key] = v
				}
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name iterations metric unit [metric unit]... — at least one pair.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		b.Name = fields[0]
		if i := strings.LastIndex(b.Name, "-"); i > 0 {
			if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
				b.Name, b.Procs = b.Name[:i], procs
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value on %q", line)
			}
			b.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

func validate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Doc
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return err
	}
	if doc.Version != 1 {
		return fmt.Errorf("unsupported version %d", doc.Version)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks recorded")
	}
	for _, b := range doc.Benchmarks {
		if b.Name == "" || !strings.HasPrefix(b.Name, "Benchmark") {
			return fmt.Errorf("bad benchmark name %q", b.Name)
		}
		if b.Iterations <= 0 {
			return fmt.Errorf("%s: nonpositive iteration count %d", b.Name, b.Iterations)
		}
		if _, ok := b.Metrics["ns/op"]; !ok {
			return fmt.Errorf("%s: no ns/op metric", b.Name)
		}
	}
	fmt.Printf("%s: %d benchmarks, valid\n", path, len(doc.Benchmarks))
	return nil
}

// load reads and structurally validates one artifact for -diff.
func load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported version %d", path, doc.Version)
	}
	return &doc, nil
}

// key identifies a benchmark across artifacts: same package, same name.
func key(b Benchmark) string { return b.Package + "." + b.Name }

// diffArtifacts prints a per-benchmark ns/op comparison of old vs new
// and returns how many shared benchmarks regressed past the threshold.
// Benchmarks only present on one side are listed as added/removed and
// never count as regressions.
func diffArtifacts(oldPath, newPath string, threshold float64) (int, error) {
	oldDoc, err := load(oldPath)
	if err != nil {
		return 0, err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return 0, err
	}
	oldBy := make(map[string]Benchmark, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldBy[key(b)] = b
	}
	regressions := 0
	seen := make(map[string]bool, len(newDoc.Benchmarks))
	for _, nb := range newDoc.Benchmarks {
		seen[key(nb)] = true
		ob, ok := oldBy[key(nb)]
		if !ok {
			fmt.Printf("ADDED    %-50s %12.1f ns/op\n", nb.Name, nb.Metrics["ns/op"])
			continue
		}
		oldNs, newNs := ob.Metrics["ns/op"], nb.Metrics["ns/op"]
		if oldNs <= 0 {
			fmt.Printf("SKIP     %-50s old ns/op %g not comparable\n", nb.Name, oldNs)
			continue
		}
		delta := (newNs - oldNs) / oldNs
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSED"
			regressions++
		} else if delta < -threshold {
			verdict = "improved"
		}
		fmt.Printf("%-8s %-50s %12.1f -> %12.1f ns/op  %+6.1f%%\n",
			verdict, nb.Name, oldNs, newNs, delta*100)
	}
	for _, ob := range oldDoc.Benchmarks {
		if !seen[key(ob)] {
			fmt.Printf("REMOVED  %-50s %12.1f ns/op\n", ob.Name, ob.Metrics["ns/op"])
		}
	}
	return regressions, nil
}
