// Command jsoncheck validates that each argument file parses as JSON
// and, for Chrome trace-event documents, that the traceEvents array is
// present and non-empty. It exists so CI can validate exported traces
// with the Go toolchain alone.
//
// HTML observability reports (.html) are handled too: the embedded
// <script type="application/json" id="rda-data"> payload is extracted
// and validated instead of the document itself.
//
// Usage: go run ./scripts/jsoncheck file.json... report.html...
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "jsoncheck: usage: jsoncheck file.json...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

var payloadRE = regexp.MustCompile(
	`(?s)<script type="application/json" id="rda-data">(.*?)</script>`)

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".html") {
		m := payloadRE.FindSubmatch(data)
		if m == nil {
			return fmt.Errorf("no embedded rda-data JSON payload")
		}
		var payload map[string]json.RawMessage
		if err := json.Unmarshal(m[1], &payload); err != nil {
			return fmt.Errorf("embedded payload: %w", err)
		}
		if _, ok := payload["blame"]; !ok {
			return fmt.Errorf("embedded payload has no blame section")
		}
		fmt.Printf("%s: embedded payload with %d sections\n", path, len(payload))
		return nil
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if raw, ok := doc["traceEvents"]; ok {
		var events []json.RawMessage
		if err := json.Unmarshal(raw, &events); err != nil {
			return fmt.Errorf("traceEvents is not an array: %w", err)
		}
		if len(events) == 0 {
			return fmt.Errorf("traceEvents is empty")
		}
		fmt.Printf("%s: %d trace events\n", path, len(events))
		return nil
	}
	fmt.Printf("%s: valid JSON\n", path)
	return nil
}
