// Command jsoncheck validates that each argument file parses as JSON
// and, for Chrome trace-event documents, that the traceEvents array is
// present and non-empty. It exists so CI can validate exported traces
// with the Go toolchain alone.
//
// Usage: go run ./scripts/jsoncheck file.json...
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "jsoncheck: usage: jsoncheck file.json...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid JSON\n", path)
	}
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if raw, ok := doc["traceEvents"]; ok {
		var events []json.RawMessage
		if err := json.Unmarshal(raw, &events); err != nil {
			return fmt.Errorf("traceEvents is not an array: %w", err)
		}
		if len(events) == 0 {
			return fmt.Errorf("traceEvents is empty")
		}
		fmt.Printf("%s: %d trace events\n", path, len(events))
	}
	return nil
}
