// Command promlint validates a Prometheus text exposition (version
// 0.0.4) scraped from the live /metrics endpoint: it checks the
// line-level format, rebuilds a telemetry.Registry from the # TYPE
// declarations, and runs the registry's own Lint over it — so CI's
// curl of a running server is held to exactly the naming conventions
// the in-process tests enforce.
//
// Usage:
//
//	curl -s localhost:8080/metrics | go run ./scripts/promlint
//	go run ./scripts/promlint metrics.txt
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rdasched/internal/telemetry"
)

func main() {
	r := io.Reader(os.Stdin)
	src := "stdin"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		defer f.Close()
		r, src = f, os.Args[1]
	}
	families, errs := lint(r)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "promlint:", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	if families == 0 {
		fmt.Fprintln(os.Stderr, "promlint: no metric families in", src)
		os.Exit(1)
	}
	fmt.Printf("%s: %d metric families, lint-clean\n", src, families)
}

// lint parses one exposition and returns the family count plus every
// format or convention violation found.
func lint(r io.Reader) (families int, errs []error) {
	reg := telemetry.NewRegistry()
	typed := map[string]string{} // family name -> declared kind
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				errs = append(errs, fmt.Errorf("line %d: malformed TYPE declaration %q", n, line))
				continue
			}
			name, kind := fields[2], fields[3]
			if prev, dup := typed[name]; dup {
				errs = append(errs, fmt.Errorf("line %d: %q declared twice (%s, then %s)", n, name, prev, kind))
				continue
			}
			typed[name] = kind
			// Registering the family in a real Registry makes its Lint —
			// name grammar, _total conventions, reserved suffixes, kind
			// collisions — apply verbatim to the scraped exposition.
			switch kind {
			case "counter":
				reg.Counter(name)
			case "gauge":
				reg.Gauge(name)
			case "histogram":
				reg.Histogram(name)
			default:
				errs = append(errs, fmt.Errorf("line %d: %q has unknown type %q", n, name, kind))
			}
		case strings.HasPrefix(line, "#"):
			// HELP and comments are fine.
		default:
			name, value, ok := sampleLine(line)
			if !ok {
				errs = append(errs, fmt.Errorf("line %d: malformed sample %q", n, line))
				continue
			}
			if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
				errs = append(errs, fmt.Errorf("line %d: %s has non-numeric value %q", n, name, value))
			}
			if !declared(typed, name) {
				errs = append(errs, fmt.Errorf("line %d: sample %q has no TYPE declaration", n, name))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, append(errs, err)
	}
	for _, err := range reg.Lint() {
		errs = append(errs, err)
	}
	return len(typed), errs
}

// sampleLine splits "name{labels} value" or "name value" into its name
// and value.
func sampleLine(line string) (name, value string, ok bool) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", false
		}
		name, rest = line[:i], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", false
		}
		name, rest = fields[0], fields[1]
	}
	fields := strings.Fields(rest)
	if name == "" || len(fields) == 0 {
		return "", "", false
	}
	return name, fields[0], true
}

// declared reports whether a sample name belongs to a declared family,
// accounting for the histogram-derived _bucket/_sum/_count series.
func declared(typed map[string]string, name string) bool {
	if _, ok := typed[name]; ok {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if ok && typed[base] == "histogram" {
			return true
		}
	}
	return false
}
