package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the CLI's numeric-range checks. The -scale
// check in particular regresses a real bug: the CLI used to apply
// scaling only when 0 < scale < 1 and silently run the full workload
// for anything else, so `-scale 10` looked like a very slow quick run.
func TestValidateFlags(t *testing.T) {
	type in struct {
		scale, jitter            float64
		reps, jobs               int
		sloMS, ckptEvery, killAt float64
		listen, pace             string
	}
	valid := in{scale: 1, jitter: 0.02, reps: 4, jobs: 1, pace: "max"}
	cases := []struct {
		name    string
		in      in
		wantErr string // substring; empty means valid
	}{
		{"defaults", valid, ""},
		{"quick-run", in{scale: 0.05, reps: 1, jobs: 4, sloMS: 25, ckptEvery: 0.5, killAt: 1.5, pace: "max"}, ""},
		{"live-watch", in{scale: 1, reps: 1, jobs: 1, listen: ":8080", pace: "10x"}, ""},
		{"listen-any-port", in{scale: 1, reps: 1, jobs: 1, listen: "127.0.0.1:0", pace: "1x"}, ""},
		{"pace-fractional", in{scale: 1, reps: 1, jobs: 1, pace: "0.5x"}, ""},
		{"scale-zero", in{scale: 0, reps: 1, jobs: 1, pace: "max"}, "-scale"},
		{"scale-negative", in{scale: -1, reps: 1, jobs: 1, pace: "max"}, "-scale"},
		{"scale-above-one", in{scale: 10, reps: 1, jobs: 1, pace: "max"}, "-scale"},
		{"jitter-negative", in{scale: 1, jitter: -0.1, reps: 1, jobs: 1, pace: "max"}, "-jitter"},
		{"reps-zero", in{scale: 1, reps: 0, jobs: 1, pace: "max"}, "-reps"},
		{"jobs-zero", in{scale: 1, reps: 1, jobs: 0, pace: "max"}, "-jobs"},
		{"slo-negative", in{scale: 1, reps: 1, jobs: 1, sloMS: -50, pace: "max"}, "-slo-ms"},
		{"checkpoint-every-negative", in{scale: 1, reps: 1, jobs: 1, ckptEvery: -1, pace: "max"}, "-checkpoint-every"},
		{"kill-at-negative", in{scale: 1, reps: 1, jobs: 1, killAt: -2, pace: "max"}, "-kill-at"},
		{"listen-no-port", in{scale: 1, reps: 1, jobs: 1, listen: "localhost", pace: "max"}, "-listen"},
		{"listen-garbage", in{scale: 1, reps: 1, jobs: 1, listen: "http://:8080", pace: "max"}, "-listen"},
		{"pace-zero", in{scale: 1, reps: 1, jobs: 1, pace: "0x"}, "-pace"},
		{"pace-negative", in{scale: 1, reps: 1, jobs: 1, pace: "-2x"}, "-pace"},
		{"pace-garbage", in{scale: 1, reps: 1, jobs: 1, pace: "fast"}, "-pace"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.in.scale, tc.in.jitter, tc.in.reps, tc.in.jobs,
				tc.in.sloMS, tc.in.ckptEvery, tc.in.killAt, tc.in.listen, tc.in.pace)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}
