package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the CLI's numeric-range checks. The -scale
// check in particular regresses a real bug: the CLI used to apply
// scaling only when 0 < scale < 1 and silently run the full workload
// for anything else, so `-scale 10` looked like a very slow quick run.
func TestValidateFlags(t *testing.T) {
	type in struct {
		scale, jitter            float64
		reps, jobs               int
		sloMS, ckptEvery, killAt float64
	}
	valid := in{scale: 1, jitter: 0.02, reps: 4, jobs: 1}
	cases := []struct {
		name    string
		in      in
		wantErr string // substring; empty means valid
	}{
		{"defaults", valid, ""},
		{"quick-run", in{scale: 0.05, reps: 1, jobs: 4, sloMS: 25, ckptEvery: 0.5, killAt: 1.5}, ""},
		{"scale-zero", in{scale: 0, reps: 1, jobs: 1}, "-scale"},
		{"scale-negative", in{scale: -1, reps: 1, jobs: 1}, "-scale"},
		{"scale-above-one", in{scale: 10, reps: 1, jobs: 1}, "-scale"},
		{"jitter-negative", in{scale: 1, jitter: -0.1, reps: 1, jobs: 1}, "-jitter"},
		{"reps-zero", in{scale: 1, reps: 0, jobs: 1}, "-reps"},
		{"jobs-zero", in{scale: 1, reps: 1, jobs: 0}, "-jobs"},
		{"slo-negative", in{scale: 1, reps: 1, jobs: 1, sloMS: -50}, "-slo-ms"},
		{"checkpoint-every-negative", in{scale: 1, reps: 1, jobs: 1, ckptEvery: -1}, "-checkpoint-every"},
		{"kill-at-negative", in{scale: 1, reps: 1, jobs: 1, killAt: -2}, "-kill-at"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.in.scale, tc.in.jitter, tc.in.reps, tc.in.jobs,
				tc.in.sloMS, tc.in.ckptEvery, tc.in.killAt)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}
