// Command rdasched runs one of the paper's Table 2 workloads on the
// simulated Table 1 machine under a chosen scheduling configuration and
// prints the perf/RAPL-style measurement report.
//
// Usage:
//
//	rdasched -workload water_nsq -policy strict
//	rdasched -workload BLAS-3 -policy compromise -reps 4 -jitter 0.02
//	rdasched -workload water_nsq -policy strict -trace out.json -metrics
//	rdasched -workload water_nsq -policy strict -domains 2 -domain-faults 0.5
//	rdasched -workload water_nsq -policy strict -listen :8080 -pace 10x
//	rdasched -list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rdasched/internal/core"
	"rdasched/internal/experiments"
	"rdasched/internal/faults"
	"rdasched/internal/machine"
	"rdasched/internal/obsrv"
	"rdasched/internal/perf"
	"rdasched/internal/persist"
	"rdasched/internal/proc"
	"rdasched/internal/profutil"
	"rdasched/internal/report"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry/blame"
	"rdasched/internal/telemetry/trace"
	"rdasched/internal/version"
	"rdasched/internal/workloads"
)

// validateFlags rejects out-of-range numeric flags with a clear error.
// The old behaviour silently ignored an out-of-range -scale, which made
// `-scale 10` look like a slow full run instead of a typo.
func validateFlags(scale, jitter float64, reps, jobs int, sloMS, ckptEvery, killAt float64, listen, pace string) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("-scale %g out of range (need 0 < scale <= 1)", scale)
	}
	if jitter < 0 {
		return fmt.Errorf("-jitter %g is negative", jitter)
	}
	if reps < 1 {
		return fmt.Errorf("-reps %d, need at least 1", reps)
	}
	if jobs < 1 {
		return fmt.Errorf("-jobs %d, need at least 1", jobs)
	}
	if sloMS < 0 {
		return fmt.Errorf("-slo-ms %g is negative", sloMS)
	}
	if ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every %g is negative", ckptEvery)
	}
	if killAt < 0 {
		return fmt.Errorf("-kill-at %g is negative", killAt)
	}
	if listen != "" {
		if _, _, err := net.SplitHostPort(listen); err != nil {
			return fmt.Errorf("-listen %q is not a host:port address: %v", listen, err)
		}
	}
	if _, err := obsrv.ParsePace(pace); err != nil {
		return fmt.Errorf("-pace: %v", err)
	}
	return nil
}

func main() {
	var (
		workload  = flag.String("workload", "", "Table 2 workload name (see -list)")
		policy    = flag.String("policy", "default", "scheduling policy: default, strict, or compromise")
		reps      = flag.Int("reps", 4, "measurement repetitions to average (the paper uses 4)")
		jitter    = flag.Float64("jitter", 0.02, "run-to-run phase-length variation (fraction)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		scale     = flag.Float64("scale", 1, "shrink phase lengths for quick runs (0 < scale ≤ 1)")
		list      = flag.Bool("list", false, "list workloads and exit")
		all       = flag.Bool("all", false, "run every workload under every policy")
		asJSON    = flag.Bool("json", false, "emit the measurement as JSON instead of a table")
		timeline  = flag.Bool("timeline", false, "render a core-utilization timeline and the scheduler's last decisions")
		tracePath = flag.String("trace", "", "write the run's decision spans as Chrome/Perfetto trace-event JSON to this file")
		metrics   = flag.Bool("metrics", false, "print the telemetry registry (Prometheus text exposition) after the report")
		jobs      = flag.Int("jobs", 1, "concurrent repetitions (output is identical for any value)")
		governor  = flag.Bool("governor", false, "attach the adaptive admission governor (policy degradation, misdeclaration quarantine, waitlist aging)")
		domains   = flag.Int("domains", 0, "shard the LLC into N admission domains with demand-aware placement and cross-domain steal (0 = unsharded)")
		domFaults = flag.Float64("domain-faults", 0, "crash admission domain 0 at this many virtual seconds (healing at 2x) and evacuate its periods; needs -domains >= 2")
		obsDir    = flag.String("obs-dir", "", "write a self-contained HTML observability report (blame matrix, critical path, SLO burn rate) into this directory; needs a scheduling policy")
		sloMS     = flag.Float64("slo-ms", 0, "admission-latency SLO objective in virtual milliseconds for the -obs-dir report (0 = default 50ms)")
		ckptDir   = flag.String("checkpoint-dir", "", "append an admission journal and periodic state snapshots into this directory while running; needs a scheduling policy and -reps 1")
		ckptEvery = flag.Float64("checkpoint-every", 0, "virtual seconds between periodic snapshots under -checkpoint-dir (0 = journal-only after the attach snapshot)")
		restore   = flag.String("restore", "", "restore the gate from this checkpoint directory and resume the killed run to completion")
		killAt    = flag.Float64("kill-at", 0, "kill the process at this virtual second (crash injection; pair with -checkpoint-dir, then resume with -restore)")
		listen    = flag.String("listen", "", "serve live introspection endpoints (/metrics, /events, /state, /blame, /debug/pprof) on this address while the run executes, e.g. :8080")
		pace      = flag.String("pace", "max", `wall-clock pacing of virtual time: "max" (unthrottled) or a ratio like "1x" (real time) or "10x"`)
		showVer   = flag.Bool("version", false, "print the build identity and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of this process to the file")
		memProf   = flag.String("memprofile", "", "write a heap profile of this process to the file on exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}
	if err := validateFlags(*scale, *jitter, *reps, *jobs, *sloMS, *ckptEvery, *killAt, *listen, *pace); err != nil {
		fmt.Fprintln(os.Stderr, "rdasched:", err)
		os.Exit(2)
	}

	stopProf, err := profutil.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "rdasched:", err)
		}
	}()

	if *list {
		fmt.Println("Table 2 workloads:")
		for _, n := range workloads.Names() {
			fmt.Println("  ", n)
		}
		return
	}

	if *all {
		if err := runAll(*reps, *jitter, *seed, *scale); err != nil {
			fatal(err)
		}
		return
	}

	if *workload == "" {
		fmt.Fprintln(os.Stderr, "rdasched: -workload required (or -list / -all); e.g. -workload water_nsq")
		os.Exit(2)
	}
	w, err := workloads.ByName(*workload)
	if err != nil {
		fatal(err)
	}
	if *scale < 1 { // validated above: 0 < scale <= 1
		w = proc.ScaleInstr(w, *scale)
	}
	var pol core.Policy
	if *policy != "default" {
		pol, err = core.PolicyByName(*policy)
		if err != nil {
			fatal(err)
		}
	}
	if *timeline {
		if err := runTimeline(w, pol); err != nil {
			fatal(err)
		}
		return
	}
	rc := perf.RunConfig{
		Machine:     machine.DefaultConfig(),
		Policy:      pol,
		Repetitions: *reps,
		JitterFrac:  *jitter,
		Seed:        *seed,
		Telemetry:   *metrics || *tracePath != "" || *listen != "",
		Trace:       *tracePath != "",
		Jobs:        *jobs,
		Domains:     *domains,
	}
	rc.Pace, _ = obsrv.ParsePace(*pace) // validated above
	if *listen != "" {
		srv, err := obsrv.Serve(obsrv.Config{Addr: *listen})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rdasched: introspection server on %s\n", srv.URL())
		rc.Obsrv = srv
		// SIGINT/SIGTERM stop the run at the next event boundary instead
		// of killing the process: perf surfaces ErrStopped and the CLI
		// exits cleanly (the CI smoke job relies on this).
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			sig := <-sigc
			fmt.Fprintf(os.Stderr, "rdasched: received %v, stopping run\n", sig)
			srv.RequestStop()
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := srv.Close(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "rdasched: introspection shutdown:", err)
			}
		}()
	}
	if *domains >= 1 && pol == nil {
		fatal(fmt.Errorf("-domains needs a scheduling policy (-policy strict or compromise)"))
	}
	if *obsDir != "" {
		if pol == nil {
			fatal(fmt.Errorf("-obs-dir needs a scheduling policy (-policy strict or compromise)"))
		}
		rc.Blame = true
		slo := blame.DefaultSLOConfig()
		if *sloMS > 0 {
			slo.Objective = sim.Duration(*sloMS * float64(sim.Millisecond))
		}
		rc.SLO = &slo
	}
	if *domFaults > 0 {
		if *domains < 2 {
			fatal(fmt.Errorf("-domain-faults needs -domains >= 2 (a crashed shard needs a survivor to evacuate to)"))
		}
		at := sim.FromSeconds(*domFaults)
		rc.Faults = &faults.Plan{DomainFaults: []faults.DomainFault{
			{Kind: faults.DomainCrash, Domain: 0, At: at, Heal: at},
		}}
		rcfg := core.DefaultRecoveryConfig()
		rc.Recovery = &rcfg
	}
	if *governor {
		if pol == nil {
			fatal(fmt.Errorf("-governor needs a scheduling policy (-policy strict or compromise)"))
		}
		cfg := core.DefaultGovernorConfig()
		rc.Governor = &cfg
	}
	if *ckptDir != "" {
		rc.Checkpoint = &persist.Config{Dir: *ckptDir, Every: sim.FromSeconds(*ckptEvery)}
	}
	if *killAt > 0 {
		if rc.Faults == nil {
			rc.Faults = &faults.Plan{}
		}
		rc.Faults.KillAt = sim.FromSeconds(*killAt)
	}
	if *restore != "" {
		res, err := persist.Restore(*restore)
		if err != nil {
			fatal(err)
		}
		rc.Restore = res
		rc.Repetitions = 1 // a checkpoint belongs to a single repetition
		fmt.Fprintf(os.Stderr, "rdasched: restored seq %d (snapshot %d + %d replayed), resuming from %.3fs virtual\n",
			res.Seq, res.SnapshotSeq, res.Replayed, res.KillAt.Seconds())
	}
	mean, sd, err := perf.Run(w, rc)
	if err != nil {
		// A signal-requested stop is a clean, intentional end of the
		// run: report it and exit 0 (partial measurements are discarded,
		// the run never completed).
		if errors.Is(err, perf.ErrStopped) {
			fmt.Fprintln(os.Stderr, "rdasched:", err)
			return
		}
		// An armed -kill-at halting the run is the injected crash doing
		// its job, not a failure: report where the checkpoint landed.
		if errors.Is(err, machine.ErrHalted) && *ckptDir != "" {
			fmt.Fprintln(os.Stderr, "rdasched:", err)
			fmt.Fprintf(os.Stderr, "rdasched: checkpoint preserved; resume with -restore %s\n", *ckptDir)
			return
		}
		fatal(err)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, mean.Spans); err != nil {
			fatal(err)
		}
	}
	if *obsDir != "" {
		if err := writeObsReport(*obsDir, w, *policy, mean); err != nil {
			fatal(err)
		}
	}
	if *asJSON {
		out := struct {
			Workload string       `json:"workload"`
			Policy   string       `json:"policy"`
			Mean     perf.Metrics `json:"mean"`
			StdDev   perf.Metrics `json:"stddev"`
		}{*workload, *policy, mean, sd}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		if *metrics && mean.Telemetry != nil {
			if err := mean.Telemetry.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}
	printMetrics(*workload, *policy, mean, sd)
	if *metrics && mean.Telemetry != nil {
		fmt.Println()
		if err := mean.Telemetry.WritePrometheus(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// writeObsReport renders the run's blame/SLO measurement as one
// self-contained HTML file under dir, named after workload and policy.
func writeObsReport(dir string, w proc.Workload, policy string, m perf.Metrics) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := blame.ReportMeta{Workload: w.Name, Policy: policy}
	for _, s := range w.Procs {
		meta.Procs = append(meta.Procs, s.Name)
	}
	rpt := m.Blame
	if rpt == nil {
		rpt = &blame.Report{}
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%s.html", w.Name, policy))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = blame.WriteHTML(f, meta, rpt, m.SLO)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintln(os.Stderr, "rdasched: wrote", path)
	}
	return err
}

// writeTrace exports the spans of a measured run as a Chrome trace-event
// JSON file, loadable in Perfetto or chrome://tracing.
func writeTrace(path string, spans []trace.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = trace.WriteChrome(f, spans)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func runAll(reps int, jitter float64, seed uint64, scale float64) error {
	opt := experiments.Defaults()
	opt.Repetitions = reps
	opt.JitterFrac = jitter
	opt.Seed = seed
	opt.Scale = scale
	rows, err := experiments.RunPolicyComparison(workloads.Table2(), opt)
	if err != nil {
		return err
	}
	t := report.NewTable("All workloads under all policies",
		"workload", "policy", "system J", "DRAM J", "GFLOPS", "GFLOPS/W", "seconds")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Policy,
			fmt.Sprintf("%.1f", r.Mean.SystemJ),
			fmt.Sprintf("%.1f", r.Mean.DRAMJ),
			fmt.Sprintf("%.3f", r.Mean.GFLOPS),
			fmt.Sprintf("%.4f", r.Mean.GFLOPSPerWatt),
			fmt.Sprintf("%.2f", r.Mean.ElapsedSec))
	}
	fmt.Print(t.String())
	return nil
}

func printMetrics(workload, policy string, m, sd perf.Metrics) {
	fmt.Printf("workload %s under %s policy\n\n", workload, policy)
	t := report.NewTable("", "metric", "mean", "stddev")
	t.AddRow("system energy (J)", fmt.Sprintf("%.1f", m.SystemJ), fmt.Sprintf("%.2f", sd.SystemJ))
	t.AddRow("DRAM energy (J)", fmt.Sprintf("%.1f", m.DRAMJ), fmt.Sprintf("%.2f", sd.DRAMJ))
	t.AddRow("package energy (J)", fmt.Sprintf("%.1f", m.PackageJ), fmt.Sprintf("%.2f", sd.PackageJ))
	t.AddRow("GFLOPS", fmt.Sprintf("%.3f", m.GFLOPS), fmt.Sprintf("%.4f", sd.GFLOPS))
	t.AddRow("GFLOPS/Watt", fmt.Sprintf("%.4f", m.GFLOPSPerWatt), fmt.Sprintf("%.5f", sd.GFLOPSPerWatt))
	t.AddRow("elapsed (s)", fmt.Sprintf("%.3f", m.ElapsedSec), fmt.Sprintf("%.4f", sd.ElapsedSec))
	t.AddRow("DRAM accesses", fmt.Sprintf("%.3g", m.DRAMAccesses), "")
	t.AddRow("avg busy cores", fmt.Sprintf("%.1f", m.AvgBusyCores), "")
	t.AddRow("pauses / wakeups", fmt.Sprintf("%d / %d", m.Blocks, m.Wakeups), "")
	if gov := m.GovernorDegradations + m.GovernorRecoveries + m.GovernorQuarantines +
		m.GovernorRestores + m.GovernorReservations; gov > 0 {
		t.AddRow("governor degrade/recover", fmt.Sprintf("%.1f / %.1f", m.GovernorDegradations, m.GovernorRecoveries), "")
		t.AddRow("governor quarantine/restore", fmt.Sprintf("%.1f / %.1f", m.GovernorQuarantines, m.GovernorRestores), "")
		t.AddRow("governor reservations", fmt.Sprintf("%.1f", m.GovernorReservations), "")
	}
	if m.DomainPlacements > 0 || m.DomainSteals > 0 {
		t.AddRow("domain placements/steals", fmt.Sprintf("%.1f / %.1f", m.DomainPlacements, m.DomainSteals), "")
	}
	if m.DomainFailures > 0 {
		t.AddRow("domain failures/recoveries", fmt.Sprintf("%.1f / %.1f", m.DomainFailures, m.DomainRecoveries), "")
		t.AddRow("evacuations (retries)", fmt.Sprintf("%.1f (%.1f)", m.Evacuations, m.EvacRetries), "")
		t.AddRow("audit repairs / dropped", fmt.Sprintf("%.1f / %.1f", m.AuditRepairs, m.DroppedPeriods), "")
	}
	fmt.Print(t.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rdasched:", err)
	os.Exit(1)
}

// runTimeline executes one un-jittered run with utilization sampling and
// the scheduler decision log enabled, and renders both.
func runTimeline(w proc.Workload, pol core.Policy) error {
	cfg := machine.DefaultConfig()
	var gate machine.Gate
	var schd *core.Scheduler
	if pol == nil {
		w = perf.Undeclare(w)
	} else {
		schd = core.New(pol, cfg.LLCCapacity)
		schd.EnableLog(64)
		gate = schd
	}
	m := machine.New(cfg, gate)
	if schd != nil {
		schd.SetWaker(m)
		schd.SetClock(m.Now)
	}
	m.EnableTimeline(0) // default interval
	if err := m.AddWorkload(w); err != nil {
		return err
	}
	res, err := m.Run()
	if err != nil {
		return err
	}

	// Downsample the timeline to at most 40 bars.
	samples := res.Timeline
	step := 1
	if len(samples) > 40 {
		step = len(samples) / 40
	}
	var labels []string
	var busy []float64
	for i := 0; i < len(samples); i += step {
		labels = append(labels, fmt.Sprintf("%6.2fs", samples[i].At.Seconds()))
		busy = append(busy, samples[i].BusyCores)
	}
	fmt.Print(report.Bars(fmt.Sprintf("busy cores over time (of %d)", cfg.Cores), labels, busy, 48))

	if schd != nil {
		events, dropped := schd.Events()
		fmt.Printf("\nlast %d scheduler decisions (%d earlier dropped):\n", len(events), dropped)
		for _, e := range events {
			fmt.Println("  ", e)
		}
	}
	fmt.Printf("\n%.2f s, %.1f J system, %.3f GFLOPS\n",
		res.Elapsed.Seconds(), res.SystemJ, res.GFLOPS())
	return nil
}
