// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated machine.
//
// Usage:
//
//	experiments -all               # everything (takes a few minutes)
//	experiments -table 2           # workload inventory
//	experiments -fig 7             # system energy comparison
//	experiments -fig 13 -scale 0.2 # quick, shape-preserving run
//	experiments -all -markdown     # output for EXPERIMENTS.md
//	experiments -all -jobs 8       # 8 concurrent replications (same output)
//
// Replications fan out across -jobs workers (default: all cores); the
// tables are bit-identical for every worker count because each
// replication's seed derives from -seed and its job index alone.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"rdasched/internal/core"
	"rdasched/internal/experiments"
	"rdasched/internal/obsrv"
	"rdasched/internal/profutil"
	"rdasched/internal/report"
	"rdasched/internal/version"
	"rdasched/internal/workloads"
)

// validateFlags rejects out-of-range numeric flags with a clear error
// instead of silently clamping or misbehaving downstream.
func validateFlags(scale, jitter float64, reps, jobs int, listen, pace string) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("-scale %g out of range (need 0 < scale <= 1)", scale)
	}
	if jitter < 0 {
		return fmt.Errorf("-jitter %g is negative", jitter)
	}
	if reps < 1 {
		return fmt.Errorf("-reps %d, need at least 1", reps)
	}
	if jobs < 1 {
		return fmt.Errorf("-jobs %d, need at least 1", jobs)
	}
	if listen != "" {
		if _, _, err := net.SplitHostPort(listen); err != nil {
			return fmt.Errorf("-listen %q is not a host:port address: %v", listen, err)
		}
	}
	if _, err := obsrv.ParsePace(pace); err != nil {
		return fmt.Errorf("-pace: %v", err)
	}
	return nil
}

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate: 7, 8, 9, 10, 11, 12, or 13")
		table    = flag.Int("table", 0, "table to regenerate: 1 or 2")
		ext      = flag.String("ext", "", "extension experiment: partitioning, reserve, bandwidth, calibration, factor, or waits")
		exp      = flag.String("experiment", "", "named experiment: e4 (chaos: fault-injected admission), e5 (overload: governor vs static policies), e6 (multi-domain placement), e7 (heal: shard failure recovery), e8 (observe: causal wait attribution), or e9 (revive: crash-restart checkpoint/restore)")
		all      = flag.Bool("all", false, "regenerate everything")
		scale    = flag.Float64("scale", 1, "shrink phase lengths (0 < scale ≤ 1) for quick runs")
		reps     = flag.Int("reps", 4, "repetitions per measurement")
		jitter   = flag.Float64("jitter", 0.02, "run-to-run variation")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent replications (output is identical for any value)")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		traceDir = flag.String("trace-dir", "", "write one Chrome/Perfetto trace-event JSON file per measured cell into this directory")
		obsDir   = flag.String("obs-dir", "", "write one self-contained HTML observability report (blame matrix, critical path, SLO burn rate) per measured cell into this directory")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of this process to the file")
		memProf  = flag.String("memprofile", "", "write a heap profile of this process to the file on exit")
		metrics  = flag.Bool("metrics", false, "print the telemetry registry (Prometheus text exposition) after harnesses that collect one (e4, e5, waits)")
		governor = flag.Bool("governor", false, "attach the adaptive admission governor to every scheduled cell (e5 configures its own)")
		listen   = flag.String("listen", "", "serve live introspection endpoints (/metrics, /events, /state, /debug/pprof) on this address while the sweep runs, e.g. :8080")
		pace     = flag.String("pace", "max", `wall-clock pacing of virtual time: "max" (unthrottled) or a ratio like "1x" (real time) or "10x"`)
		showVer  = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}
	if err := validateFlags(*scale, *jitter, *reps, *jobs, *listen, *pace); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	opt := experiments.Defaults()
	opt.Scale = *scale
	opt.Repetitions = *reps
	opt.JitterFrac = *jitter
	opt.Seed = *seed
	opt.Jobs = *jobs
	opt.TraceDir = *traceDir
	opt.ObsDir = *obsDir
	opt.Pace, _ = obsrv.ParsePace(*pace) // validated above
	if *listen != "" {
		srv, err := obsrv.Serve(obsrv.Config{Addr: *listen})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "experiments: introspection server on %s\n", srv.URL())
		opt.Obsrv = srv
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := srv.Close(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: introspection shutdown:", err)
			}
		}()
	}
	stopProf, err := profutil.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	if *governor {
		cfg := core.DefaultGovernorConfig()
		opt.Governor = &cfg
	}

	emit := func(t *report.Table) {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}

	var tasks []func() error
	addTable := func(n int) {
		switch n {
		case 1:
			tasks = append(tasks, func() error { emit(experiments.Table1()); return nil })
		case 2:
			tasks = append(tasks, func() error { emit(experiments.Table2Report()); return nil })
		default:
			fatal(fmt.Errorf("unknown table %d (have 1, 2)", n))
		}
	}
	addFig := func(n int) {
		switch n {
		case 7, 8, 9, 10:
			tasks = append(tasks, func() error {
				rows, err := experiments.RunPolicyComparison(workloads.Table2(), opt)
				if err != nil {
					return err
				}
				for _, f := range []int{7, 8, 9, 10} {
					if f != n && !*all {
						continue
					}
					t, err := experiments.FigureTable(f, rows)
					if err != nil {
						return err
					}
					emit(t)
				}
				return nil
			})
		case 11:
			tasks = append(tasks, func() error {
				res, err := experiments.RunGranularity(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				return nil
			})
		case 12:
			tasks = append(tasks, func() error {
				res, err := experiments.RunWSSPrediction(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				return nil
			})
		case 13:
			tasks = append(tasks, func() error {
				res, err := experiments.RunInterference(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				return nil
			})
		default:
			fatal(fmt.Errorf("unknown figure %d (have 7-13)", n))
		}
	}

	addExt := func(name string) {
		switch name {
		case "partitioning", "reserve":
			run := experiments.RunPartitioning
			if name == "reserve" {
				run = experiments.RunReserve
			}
			tasks = append(tasks, func() error {
				res, err := run(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				return nil
			})
		case "calibration":
			tasks = append(tasks, func() error {
				res, err := experiments.RunCalibration(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				return nil
			})
		case "bandwidth":
			tasks = append(tasks, func() error {
				res, err := experiments.RunBandwidth(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				return nil
			})
		case "factor":
			tasks = append(tasks, func() error {
				res, err := experiments.RunFactorSweep(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				return nil
			})
		case "waits":
			tasks = append(tasks, func() error {
				res, err := experiments.RunWaitProfile(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				if *metrics {
					return res.Merged.WritePrometheus(os.Stdout)
				}
				return nil
			})
		default:
			fatal(fmt.Errorf("unknown extension %q (have partitioning, reserve, bandwidth, calibration, factor, waits)", name))
		}
	}

	addExperiment := func(name string) {
		switch name {
		case "e4", "chaos":
			tasks = append(tasks, func() error {
				res, err := experiments.RunChaos(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				if *metrics {
					return res.Telemetry.WritePrometheus(os.Stdout)
				}
				return nil
			})
		case "e5", "overload":
			tasks = append(tasks, func() error {
				res, err := experiments.RunOverload(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				if *metrics {
					return res.Telemetry.WritePrometheus(os.Stdout)
				}
				return nil
			})
		case "e6", "domains":
			tasks = append(tasks, func() error {
				res, err := experiments.RunDomains(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				if *metrics {
					return res.Telemetry.WritePrometheus(os.Stdout)
				}
				return nil
			})
		case "e7", "heal":
			tasks = append(tasks, func() error {
				res, err := experiments.RunHeal(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				if *metrics {
					return res.Telemetry.WritePrometheus(os.Stdout)
				}
				return nil
			})
		case "e8", "observe":
			tasks = append(tasks, func() error {
				res, err := experiments.RunObserve(opt)
				if err != nil {
					return err
				}
				emit(res.Table())
				if *metrics {
					return res.Telemetry.WritePrometheus(os.Stdout)
				}
				return nil
			})
		case "e9", "revive":
			tasks = append(tasks, func() error {
				res, err := experiments.RunRevive(opt)
				if err != nil {
					return err
				}
				fmt.Println(version.String())
				emit(res.Table())
				if *metrics {
					return res.Telemetry.WritePrometheus(os.Stdout)
				}
				return nil
			})
		default:
			fatal(fmt.Errorf("unknown experiment %q (have e4, e5, e6, e7, e8, e9)", name))
		}
	}

	switch {
	case *all:
		addTable(1)
		addTable(2)
		addFig(7) // emits 7-10 together from one sweep
		addFig(11)
		addFig(12)
		addFig(13)
		addExt("partitioning")
		addExt("reserve")
		addExt("bandwidth")
		addExt("calibration")
		addExt("factor")
		addExt("waits")
		addExperiment("e4")
		addExperiment("e5")
		addExperiment("e6")
		addExperiment("e7")
		addExperiment("e8")
		addExperiment("e9")
	case *table != 0:
		addTable(*table)
	case *fig != 0:
		addFig(*fig)
	case *ext != "":
		addExt(*ext)
	case *exp != "":
		addExperiment(*exp)
	default:
		fmt.Fprintln(os.Stderr, "experiments: pass -all, -fig N, -table N, -ext NAME, or -experiment NAME")
		os.Exit(2)
	}

	for _, task := range tasks {
		if err := task(); err != nil {
			stopProf() // best effort: flush the CPU profile before exiting
			fatal(err)
		}
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
