package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the CLI's numeric-range checks: every rejected
// combination must fail loudly (the old behaviour silently ignored
// out-of-range values) and every sane one must pass.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		scale   float64
		jitter  float64
		reps    int
		jobs    int
		wantErr string // substring; empty means valid
	}{
		{"defaults", 1, 0.02, 4, 8, ""},
		{"quick-run", 0.05, 0, 1, 1, ""},
		{"scale-zero", 0, 0.02, 4, 1, "-scale"},
		{"scale-negative", -0.5, 0.02, 4, 1, "-scale"},
		{"scale-above-one", 2, 0.02, 4, 1, "-scale"},
		{"jitter-negative", 1, -0.01, 4, 1, "-jitter"},
		{"reps-zero", 1, 0.02, 0, 1, "-reps"},
		{"reps-negative", 1, 0.02, -3, 1, "-reps"},
		{"jobs-zero", 1, 0.02, 4, 0, "-jobs"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.scale, tc.jitter, tc.reps, tc.jobs)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}
