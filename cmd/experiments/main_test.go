package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the CLI's numeric-range checks: every rejected
// combination must fail loudly (the old behaviour silently ignored
// out-of-range values) and every sane one must pass.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		scale   float64
		jitter  float64
		reps    int
		jobs    int
		listen  string
		pace    string
		wantErr string // substring; empty means valid
	}{
		{"defaults", 1, 0.02, 4, 8, "", "max", ""},
		{"quick-run", 0.05, 0, 1, 1, "", "max", ""},
		{"live-watch", 1, 0.02, 4, 1, ":8080", "10x", ""},
		{"scale-zero", 0, 0.02, 4, 1, "", "max", "-scale"},
		{"scale-negative", -0.5, 0.02, 4, 1, "", "max", "-scale"},
		{"scale-above-one", 2, 0.02, 4, 1, "", "max", "-scale"},
		{"jitter-negative", 1, -0.01, 4, 1, "", "max", "-jitter"},
		{"reps-zero", 1, 0.02, 0, 1, "", "max", "-reps"},
		{"reps-negative", 1, 0.02, -3, 1, "", "max", "-reps"},
		{"jobs-zero", 1, 0.02, 4, 0, "", "max", "-jobs"},
		{"listen-no-port", 1, 0.02, 4, 1, "localhost", "max", "-listen"},
		{"pace-zero", 1, 0.02, 4, 1, "", "0x", "-pace"},
		{"pace-garbage", 1, 0.02, 4, 1, "", "quick", "-pace"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.scale, tc.jitter, tc.reps, tc.jobs, tc.listen, tc.pace)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}
