// Command ppprof runs the §2.4 profiler over a synthetic application
// trace (the PIN-instrumentation stand-in), prints the per-window
// statistics on request, and reports the detected progress periods with
// the demand each would declare via pp_begin.
//
// Usage:
//
//	ppprof -app water_nsq -input 8000
//	ppprof -app ocean_cp -input 514 -windows
//	ppprof -app water_nsq -dump trace.rdat        # capture the trace
//	ppprof -load trace.rdat -app water_nsq        # profile a captured trace
package main

import (
	"flag"
	"fmt"
	"os"

	"rdasched/internal/memtrace"
	"rdasched/internal/profiler"
	"rdasched/internal/report"
	"rdasched/internal/workloads"
)

func main() {
	var (
		app     = flag.String("app", "water_nsq", "application to profile: water_nsq or ocean_cp")
		input   = flag.Int("input", 0, "input size (molecules or cells); 0 = the app's 1x default")
		seed    = flag.Uint64("seed", 1, "trace seed")
		windows = flag.Bool("windows", false, "also print per-window statistics")
		dump    = flag.String("dump", "", "write the generated trace to this file (RDAT format) and exit")
		load    = flag.String("load", "", "profile a previously dumped trace instead of generating one")
	)
	flag.Parse()

	var (
		stream memtrace.Stream
		bin    *profiler.Binary
	)
	switch *app {
	case "water_nsq":
		if *input == 0 {
			*input = workloads.WaterNsqInputs[0]
		}
		stream, bin = workloads.WaterNsqTrace(*input, *seed)
	case "ocean_cp":
		if *input == 0 {
			*input = workloads.OceanInputs[0]
		}
		stream, bin = workloads.OceanTrace(*input, *seed)
	default:
		fmt.Fprintf(os.Stderr, "ppprof: unknown app %q (want water_nsq or ocean_cp)\n", *app)
		os.Exit(2)
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		n, err := memtrace.WriteStream(f, stream)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d trace records to %s\n", n, *dump)
		return
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fs, err := memtrace.NewFileStream(f)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if fs.Err() != nil {
				fatal(fs.Err())
			}
		}()
		stream = fs
	}

	cfg := workloads.Fig12ProfilerConfig()
	wins, err := profiler.Windows(stream, cfg)
	if err != nil {
		fatal(err)
	}
	if *windows {
		t := report.NewTable(fmt.Sprintf("windows (%d instructions each)", cfg.WindowInstr),
			"window", "footprint", "WSS", "reuse", "top JMP site")
		for _, w := range wins {
			t.AddRow(fmt.Sprintf("%d", w.Index), w.Footprint.String(), w.WSS.String(),
				fmt.Sprintf("%.1f", w.ReuseRatio), fmt.Sprintf("%d", w.TopSite))
		}
		fmt.Print(t.String())
		fmt.Println()
	}

	periods, err := profiler.DetectPeriods(wins, cfg)
	if err != nil {
		fatal(err)
	}
	profiler.Annotate(periods, bin)

	t := report.NewTable(
		fmt.Sprintf("progress periods of %s at input %d", *app, *input),
		"period", "windows", "instructions", "loop", "declared demand")
	for i, p := range periods {
		loop := "?"
		if p.LoopID >= 0 {
			loop = bin.Name(p.LoopID)
		}
		t.AddRow(fmt.Sprintf("PP%d", i+1),
			fmt.Sprintf("%d-%d", p.FirstWindow, p.LastWindow),
			fmt.Sprintf("%d", p.Instr()),
			loop,
			p.Demand().String())
	}
	fmt.Print(t.String())
	fmt.Printf("\nInsert pp_begin/pp_end around each loop above to let the RDA scheduler gate it.\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppprof:", err)
	os.Exit(1)
}
