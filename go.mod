module rdasched

go 1.22
