package rdasched_test

import (
	"testing"

	"rdasched"
)

// TestFacadeFigure4 exercises the public facade end to end: describe a
// kernel the way the paper's Figure 4 does, run it under default and
// strict, and observe the admission-control effect.
func TestFacadeFigure4(t *testing.T) {
	kernel := rdasched.Phase{
		Name:             "dgemm",
		Instr:            1e7,
		WSS:              rdasched.MB(6.3),
		Reuse:            rdasched.ReuseHigh,
		AccessesPerInstr: 0.3,
		PrivateHitFrac:   0.85,
		StreamFrac:       0.05,
		FlopsPerInstr:    0.5,
		Declared:         true,
	}
	w := rdasched.Workload{
		Name: "fig4",
		Procs: []rdasched.Spec{
			{Name: "a", Threads: 1, Program: rdasched.Program{kernel}},
			{Name: "b", Threads: 1, Program: rdasched.Program{kernel}},
			{Name: "c", Threads: 1, Program: rdasched.Program{kernel}},
		},
	}

	def, _, err := rdasched.Run(w, rdasched.RunConfig{
		Machine: rdasched.DefaultMachine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	strict, _, err := rdasched.Run(w, rdasched.RunConfig{
		Machine: rdasched.DefaultMachine(),
		Policy:  rdasched.StrictPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 × 6.3 MB on 15 MB: strict must serialize (pauses observed), and
	// the serialized run moves far less data to DRAM.
	if strict.Blocks == 0 {
		t.Fatal("strict policy paused nothing")
	}
	if def.Blocks != 0 {
		t.Fatal("default baseline paused threads")
	}
	if strict.DRAMAccesses >= def.DRAMAccesses {
		t.Fatalf("strict DRAM traffic %v not below default %v",
			strict.DRAMAccesses, def.DRAMAccesses)
	}
}

func TestFacadeScheduledMachine(t *testing.T) {
	cfg := rdasched.DefaultMachine()
	m, s := rdasched.NewScheduledMachine(cfg, rdasched.NewCompromise())
	w, err := rdasched.WorkloadByName("BLAS-3")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink for test time: one kernel instance per BLAS-3 kernel kind.
	w.Procs = w.Procs[:8]
	if err := m.AddWorkload(w); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SystemJ <= 0 {
		t.Fatal("no energy accumulated")
	}
	if s.Stats().Begins == 0 {
		t.Fatal("scheduler saw no periods")
	}
	if got := s.Resources().Usage(rdasched.ResourceLLC); got != 0 {
		t.Fatalf("leftover load %v after run", got)
	}
}

func TestFacadePolicyByName(t *testing.T) {
	for _, name := range []string{"default", "strict", "compromise"} {
		if _, err := rdasched.PolicyByName(name); err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
	}
	if _, err := rdasched.PolicyByName("nope"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestFacadeTable2(t *testing.T) {
	ws := rdasched.Table2()
	if len(ws) != 8 {
		t.Fatalf("Table2 = %d workloads", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rdasched.WorkloadByName("water_nsq"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDemand(t *testing.T) {
	d := rdasched.Demand{
		Resource:   rdasched.ResourceLLC,
		WorkingSet: rdasched.MB(6.3),
		Reuse:      rdasched.ReuseHigh,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.String() == "" {
		t.Fatal("empty demand string")
	}
}
