package rdasched_test

import (
	"errors"
	"strings"
	"testing"

	"rdasched"
)

// TestFacadeCheckpointRestore drives the crash-safety surface through
// the facade alone: checkpoint a run, kill it mid-schedule, Restore the
// directory, and resume to the same final metrics as an unkilled run.
func TestFacadeCheckpointRestore(t *testing.T) {
	kernel := rdasched.Phase{
		Name:             "kernel",
		Instr:            1e7,
		WSS:              rdasched.MB(6.3),
		Reuse:            rdasched.ReuseHigh,
		AccessesPerInstr: 0.3,
		PrivateHitFrac:   0.85,
		FlopsPerInstr:    0.5,
		Declared:         true,
	}
	var w rdasched.Workload
	w.Name = "revive"
	for i := 0; i < 6; i++ {
		w.Procs = append(w.Procs, rdasched.Spec{
			Name: "p", Threads: 1, Program: rdasched.Program{kernel},
		})
	}
	rc := rdasched.RunConfig{
		Machine:     rdasched.DefaultMachine(),
		Policy:      rdasched.StrictPolicy{},
		Repetitions: 1,
		Seed:        42,
	}
	base, _, err := rdasched.Run(w, rc)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if base.MaxWaitSec == 0 {
		t.Fatal("mix forms no waitlist; restore would be trivial")
	}

	dir := t.TempDir()
	killAt := rdasched.Duration(base.ElapsedSec / 2 * 1e12) // virtual picoseconds
	krc := rc
	krc.Faults = &rdasched.FaultPlan{KillAt: killAt}
	krc.Checkpoint = &rdasched.CheckpointConfig{Dir: dir, Every: killAt / 3}
	if _, _, err := rdasched.Run(w, krc); !errors.Is(err, rdasched.ErrHalted) {
		t.Fatalf("killed run returned %v, want ErrHalted", err)
	}

	res, err := rdasched.Restore(dir)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if res.Seq == 0 || res.Truncated {
		t.Fatalf("restored seq %d truncated=%v from a clean kill", res.Seq, res.Truncated)
	}
	rrc := rc
	rrc.Restore = res
	revived, _, err := rdasched.Run(w, rrc)
	if err != nil {
		t.Fatalf("revival: %v", err)
	}
	if revived.ElapsedSec != base.ElapsedSec || revived.MaxWaitSec != base.MaxWaitSec {
		t.Fatalf("revived run (%.6f s, wait %.6f) diverged from baseline (%.6f s, wait %.6f)",
			revived.ElapsedSec, revived.MaxWaitSec, base.ElapsedSec, base.MaxWaitSec)
	}
}

// TestFacadeFigure4 exercises the public facade end to end: describe a
// kernel the way the paper's Figure 4 does, run it under default and
// strict, and observe the admission-control effect.
func TestFacadeFigure4(t *testing.T) {
	kernel := rdasched.Phase{
		Name:             "dgemm",
		Instr:            1e7,
		WSS:              rdasched.MB(6.3),
		Reuse:            rdasched.ReuseHigh,
		AccessesPerInstr: 0.3,
		PrivateHitFrac:   0.85,
		StreamFrac:       0.05,
		FlopsPerInstr:    0.5,
		Declared:         true,
	}
	w := rdasched.Workload{
		Name: "fig4",
		Procs: []rdasched.Spec{
			{Name: "a", Threads: 1, Program: rdasched.Program{kernel}},
			{Name: "b", Threads: 1, Program: rdasched.Program{kernel}},
			{Name: "c", Threads: 1, Program: rdasched.Program{kernel}},
		},
	}

	def, _, err := rdasched.Run(w, rdasched.RunConfig{
		Machine: rdasched.DefaultMachine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	strict, _, err := rdasched.Run(w, rdasched.RunConfig{
		Machine: rdasched.DefaultMachine(),
		Policy:  rdasched.StrictPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 × 6.3 MB on 15 MB: strict must serialize (pauses observed), and
	// the serialized run moves far less data to DRAM.
	if strict.Blocks == 0 {
		t.Fatal("strict policy paused nothing")
	}
	if def.Blocks != 0 {
		t.Fatal("default baseline paused threads")
	}
	if strict.DRAMAccesses >= def.DRAMAccesses {
		t.Fatalf("strict DRAM traffic %v not below default %v",
			strict.DRAMAccesses, def.DRAMAccesses)
	}
}

func TestFacadeScheduledMachine(t *testing.T) {
	cfg := rdasched.DefaultMachine()
	m, s := rdasched.NewScheduledMachine(cfg, rdasched.NewCompromise())
	w, err := rdasched.WorkloadByName("BLAS-3")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink for test time: one kernel instance per BLAS-3 kernel kind.
	w.Procs = w.Procs[:8]
	if err := m.AddWorkload(w); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SystemJ <= 0 {
		t.Fatal("no energy accumulated")
	}
	if s.Stats().Begins == 0 {
		t.Fatal("scheduler saw no periods")
	}
	if got := s.Resources().Usage(rdasched.ResourceLLC); got != 0 {
		t.Fatalf("leftover load %v after run", got)
	}
}

func TestFacadePolicyByName(t *testing.T) {
	for _, name := range []string{"default", "strict", "compromise"} {
		if _, err := rdasched.PolicyByName(name); err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
	}
	if _, err := rdasched.PolicyByName("nope"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestFacadeTable2(t *testing.T) {
	ws := rdasched.Table2()
	if len(ws) != 8 {
		t.Fatalf("Table2 = %d workloads", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rdasched.WorkloadByName("water_nsq"); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeChaos exercises the robustness surface: a faulted workload
// run with the lease watchdog and bounded waiting enabled terminates,
// and the robustness counters reach the public metrics.
func TestFacadeChaos(t *testing.T) {
	kernel := rdasched.Phase{
		Name:             "kernel",
		Instr:            1e7,
		WSS:              rdasched.MB(6.3),
		Reuse:            rdasched.ReuseHigh,
		AccessesPerInstr: 0.3,
		PrivateHitFrac:   0.85,
		StreamFrac:       0.05,
		FlopsPerInstr:    0.5,
		Declared:         true,
	}
	var w rdasched.Workload
	w.Name = "chaos"
	for i := 0; i < 6; i++ {
		w.Procs = append(w.Procs, rdasched.Spec{
			Name: "p", Threads: 1, Program: rdasched.Program{kernel},
		})
	}
	plan := rdasched.UniformFaults(0.5, rdasched.DefaultMachine().LLCCapacity)
	mean, _, err := rdasched.Run(w, rdasched.RunConfig{
		Machine:       rdasched.DefaultMachine(),
		Policy:        rdasched.StrictPolicy{},
		Faults:        &plan,
		Lease:         rdasched.Duration(200e9), // 200 ms
		AdmitDeadline: rdasched.Duration(100e9), // 100 ms
		Seed:          42,
	})
	if err != nil {
		t.Fatalf("faulted run did not terminate cleanly: %v", err)
	}
	if mean.ReclaimedLeases == 0 && mean.FallbackAdmissions == 0 {
		t.Fatal("50% fault rate exercised no robustness machinery")
	}
}

// TestFacadeDomains exercises the multi-domain surface: a skewed mix
// run at Domains=2 makes placement decisions that reach the public
// metrics, and the standalone DomainSet constructor splits capacity.
func TestFacadeDomains(t *testing.T) {
	kernel := rdasched.Phase{
		Name:             "kernel",
		Instr:            1e7,
		WSS:              rdasched.MB(6.3),
		Reuse:            rdasched.ReuseHigh,
		AccessesPerInstr: 0.3,
		PrivateHitFrac:   0.85,
		StreamFrac:       0.05,
		FlopsPerInstr:    0.5,
		Declared:         true,
	}
	var w rdasched.Workload
	w.Name = "domains"
	for i := 0; i < 6; i++ {
		w.Procs = append(w.Procs, rdasched.Spec{
			Name: "p", Threads: 1, Program: rdasched.Program{kernel},
		})
	}
	mean, _, err := rdasched.Run(w, rdasched.RunConfig{
		Machine: rdasched.DefaultMachine(),
		Policy:  rdasched.StrictPolicy{},
		Domains: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mean.DomainPlacements != 6 {
		t.Fatalf("placements = %.0f, want 6 (one per declared period)", mean.DomainPlacements)
	}

	d, err := rdasched.NewDomainSet(rdasched.StrictPolicy{}, rdasched.MB(15),
		rdasched.DefaultDomainSetConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumDomains() != 3 {
		t.Fatalf("NumDomains = %d, want 3", d.NumDomains())
	}
	ds := d.DomainStats()
	var total rdasched.Bytes
	for _, per := range ds.PerDomain {
		total += per.Capacity
	}
	if total != rdasched.MB(15) {
		t.Fatalf("per-domain capacities sum to %v, want the whole LLC", total)
	}
}

// TestFacadeBlame exercises the observability surface: a contended run
// with blame attribution and SLO evaluation enabled yields a report
// that satisfies the conservation invariant and renders as HTML.
func TestFacadeBlame(t *testing.T) {
	kernel := rdasched.Phase{
		Name:             "kernel",
		Instr:            1e7,
		WSS:              rdasched.MB(6.3),
		Reuse:            rdasched.ReuseHigh,
		AccessesPerInstr: 0.3,
		PrivateHitFrac:   0.85,
		StreamFrac:       0.05,
		FlopsPerInstr:    0.5,
		Declared:         true,
	}
	var w rdasched.Workload
	w.Name = "blame"
	for i := 0; i < 4; i++ {
		w.Procs = append(w.Procs, rdasched.Spec{
			Name: "p", Threads: 1, Program: rdasched.Program{kernel},
		})
	}
	slo := rdasched.DefaultSLOConfig()
	mean, _, err := rdasched.Run(w, rdasched.RunConfig{
		Machine: rdasched.DefaultMachine(),
		Policy:  rdasched.StrictPolicy{},
		Blame:   true,
		SLO:     &slo,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mean.Blame == nil {
		t.Fatal("no blame report collected")
	}
	if err := mean.Blame.Check(); err != nil {
		t.Fatalf("conservation violated: %v", err)
	}
	// 4 × 6.3 MB on 15 MB under strict: someone must have been blamed.
	if mean.Blame.Denies == 0 || mean.Blame.TotalBlamed == 0 {
		t.Fatalf("contended run attributed nothing: %+v", mean.Blame)
	}
	if mean.SLO == nil || mean.SLO.Admissions == 0 {
		t.Fatal("SLO monitor recorded no admissions")
	}
	var sb strings.Builder
	meta := rdasched.ObsReportMeta{Workload: w.Name, Policy: "strict", Procs: []string{"p", "p", "p", "p"}}
	if err := rdasched.WriteObservabilityHTML(&sb, meta, mean.Blame, mean.SLO); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `id="rda-data"`) {
		t.Fatal("HTML report is missing the embedded data payload")
	}
}

func TestFacadeSentinels(t *testing.T) {
	_, s := rdasched.NewScheduledMachine(rdasched.DefaultMachine(), rdasched.StrictPolicy{})
	bad := rdasched.Demand{Resource: rdasched.ResourceLLC, WorkingSet: 0, Reuse: rdasched.ReuseLow}
	if err := s.CheckDemand(bad); !errors.Is(err, rdasched.ErrInvalidDemand) {
		t.Fatalf("zero demand: %v, want ErrInvalidDemand", err)
	}
	huge := rdasched.Demand{Resource: rdasched.ResourceLLC, WorkingSet: rdasched.MB(100), Reuse: rdasched.ReuseLow}
	if err := s.CheckDemand(huge); !errors.Is(err, rdasched.ErrOversizedDemand) {
		t.Fatalf("100 MB demand: %v, want ErrOversizedDemand", err)
	}
	if err := s.Resources().Decrement(huge); !errors.Is(err, rdasched.ErrLoadUnderflow) {
		t.Fatalf("decrement on empty table: %v, want ErrLoadUnderflow", err)
	}
}

func TestFacadeDemand(t *testing.T) {
	d := rdasched.Demand{
		Resource:   rdasched.ResourceLLC,
		WorkingSet: rdasched.MB(6.3),
		Reuse:      rdasched.ReuseHigh,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.String() == "" {
		t.Fatal("empty demand string")
	}
}
