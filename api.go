package rdasched

// This file is the library's public facade: type aliases and constructors
// re-exporting the pieces a downstream user composes, so that
// `import "rdasched"` is enough for the common paths — describing a
// workload, picking a policy, running it on the Table 1 machine, and
// reading the paper's metrics. The full surface (profiler, traces, cache
// simulator, experiment harnesses) lives in the internal packages and is
// reached through the cmd/ tools and examples.

import (
	"io"

	"rdasched/internal/core"
	"rdasched/internal/faults"
	"rdasched/internal/machine"
	"rdasched/internal/obsrv"
	"rdasched/internal/perf"
	"rdasched/internal/persist"
	"rdasched/internal/pp"
	"rdasched/internal/proc"
	"rdasched/internal/sim"
	"rdasched/internal/telemetry"
	"rdasched/internal/telemetry/blame"
	"rdasched/internal/telemetry/trace"
	"rdasched/internal/workloads"
)

// Progress-period vocabulary (§2 of the paper).
type (
	// Resource identifies a tracked hardware resource (ResourceLLC).
	Resource = pp.Resource
	// Reuse is a period's relative temporal-locality level.
	Reuse = pp.Reuse
	// Bytes is a memory size.
	Bytes = pp.Bytes
	// Demand is the (resource, working set, reuse) triple of pp_begin.
	Demand = pp.Demand
)

// Re-exported constants.
const (
	ResourceLLC = pp.ResourceLLC
	ReuseLow    = pp.ReuseLow
	ReuseMed    = pp.ReuseMed
	ReuseHigh   = pp.ReuseHigh
)

// MB converts (possibly fractional) binary megabytes to Bytes — the
// paper's MB(6.3) literal.
func MB(v float64) Bytes { return pp.MB(v) }

// Workload description (what the simulated applications run).
type (
	// Phase is a duration of execution with constant resource behaviour;
	// Declared phases are bracketed by pp_begin/pp_end.
	Phase = proc.Phase
	// Program is a thread's phase sequence.
	Program = proc.Program
	// Spec describes one process (threads × program).
	Spec = proc.Spec
	// Workload is a named multiprogrammed mix.
	Workload = proc.Workload
)

// Scheduling (§3): the demand-aware extension and its policies.
type (
	// Policy is the reconfigurable scheduling predicate policy.
	Policy = core.Policy
	// Scheduler is the RDA extension (progress monitor + resource
	// monitor + predicate).
	Scheduler = core.Scheduler
	// StrictPolicy is RDA:Strict.
	StrictPolicy = core.StrictPolicy
	// CompromisePolicy is RDA:Compromise (factor x).
	CompromisePolicy = core.CompromisePolicy
)

// NewCompromise returns RDA:Compromise with the paper's factor (2).
func NewCompromise() CompromisePolicy { return core.NewCompromise() }

// Multi-domain scheduling: the LLC sharded into per-domain admission
// monitors with demand-aware placement and cross-domain steal of aged
// waiters. Select it with RunConfig.Domains, or wire a DomainSet in
// place of a Scheduler on a hand-built stack.
type (
	// DomainSet is N per-domain schedulers behind one gate.
	DomainSet = core.DomainSet
	// DomainSetConfig sizes a DomainSet (domain count, steal age).
	DomainSetConfig = core.DomainConfig
	// DomainStats summarizes cross-domain activity (placements, steals,
	// per-domain snapshots).
	DomainStats = core.DomainStats
	// DomainStat is one domain's end-of-run snapshot.
	DomainStat = core.DomainStat
	// RecoveryConfig sizes the domain fault/recovery subsystem
	// (DomainSet.EnableRecovery, RunConfig.Recovery).
	RecoveryConfig = core.RecoveryConfig
	// RecoveryMode selects what a DomainSet does with a crashed shard's
	// periods (evacuate / stall / drop).
	RecoveryMode = core.RecoveryMode
	// RecoveryStats counts recovery activity (evacuations, retries,
	// audit repairs, reintegrations).
	RecoveryStats = core.RecoveryStats
	// DomainFault is one scheduled domain-level fault (capacity loss,
	// crash, ledger corruption) in a FaultPlan.
	DomainFault = faults.DomainFault
	// DomainFaultKind classifies a DomainFault.
	DomainFaultKind = faults.DomainFaultKind
)

// Re-exported recovery modes and domain fault kinds.
const (
	RecoverEvacuate = core.RecoverEvacuate
	RecoverStall    = core.RecoverStall
	RecoverDrop     = core.RecoverDrop

	DomainCapacityLoss = faults.DomainCapacityLoss
	DomainCrash        = faults.DomainCrash
	DomainLedgerSkew   = faults.DomainLedgerSkew
)

// DefaultRecoveryConfig returns the evacuating recovery configuration
// (bounded backoff retries, periodic ledger audit).
func DefaultRecoveryConfig() RecoveryConfig { return core.DefaultRecoveryConfig() }

// DefaultDomainSetConfig returns the default configuration for n
// domains (stealing enabled at core.DefaultStealAge).
func DefaultDomainSetConfig(n int) DomainSetConfig { return core.DefaultDomainConfig(n) }

// NewDomainSet partitions an LLC budget into cfg.Domains shards under
// the shared policy; see NewScheduledMachine for the single-domain
// wiring it generalizes. An invalid configuration returns
// ErrInvalidDomainConfig.
func NewDomainSet(policy Policy, llcCapacity Bytes, cfg DomainSetConfig) (*DomainSet, error) {
	return core.NewDomainSet(policy, llcCapacity, cfg)
}

// Robustness layer: graceful degradation for misbehaving workloads.
type (
	// SchedStats are the scheduler's activity counters, including the
	// robustness counters (reclaimed leases, fallback admissions,
	// rejected demands, max wait).
	SchedStats = core.Stats
	// FaultPlan injects deterministic misbehavior into a workload
	// (misdeclared/oversized demands, leaked pp_ends, crashes, arrival
	// bursts); see RunConfig.Faults.
	FaultPlan = faults.Plan
	// Duration is a span of virtual time in picoseconds (used for the
	// period lease and admission deadline).
	Duration = sim.Duration
)

// Adaptive admission governor: overload-aware policy degradation,
// per-process misdeclaration quarantine, and starvation-free waitlist
// aging. Attach it through RunConfig.Governor (or Scheduler.
// EnableGovernor on a hand-wired stack).
type (
	// GovernorConfig tunes the governor's thresholds and windows.
	GovernorConfig = core.GovernorConfig
	// GovernorStats counts governor activity (ladder steps, breaker
	// trips, reservations).
	GovernorStats = core.GovernorStats
	// GovernorLevel is the degradation ladder position
	// (normal/degraded/shedding).
	GovernorLevel = core.GovernorLevel
	// BreakerState is a process's quarantine breaker position
	// (closed/open/half-open).
	BreakerState = core.BreakerState
)

// Re-exported governor states.
const (
	GovNormal       = core.GovNormal
	GovDegraded     = core.GovDegraded
	GovShedding     = core.GovShedding
	BreakerClosed   = core.BreakerClosed
	BreakerOpen     = core.BreakerOpen
	BreakerHalfOpen = core.BreakerHalfOpen
)

// DefaultGovernorConfig returns governor thresholds sized for the
// Table 1 machine.
func DefaultGovernorConfig() GovernorConfig { return core.DefaultGovernorConfig() }

// Sentinel errors returned by the scheduler's public admission path
// (Scheduler.CheckDemand, ResourceMonitor Increment/Decrement).
var (
	// ErrInvalidDemand: malformed or empty demand.
	ErrInvalidDemand = core.ErrInvalidDemand
	// ErrOversizedDemand: a demand the configured policy could never
	// admit alongside any other load.
	ErrOversizedDemand = core.ErrOversizedDemand
	// ErrLoadUnderflow: a release without a matching registration.
	ErrLoadUnderflow = core.ErrLoadUnderflow
	// ErrInvalidDomainConfig: a DomainSetConfig NewDomainSet refuses.
	ErrInvalidDomainConfig = core.ErrInvalidDomainConfig
	// ErrInvalidDomain: a fault-injection or recovery call against a
	// domain index outside the set, or without EnableRecovery.
	ErrInvalidDomain = core.ErrInvalidDomain
	// ErrInvalidRecoveryConfig: a RecoveryConfig EnableRecovery refuses.
	ErrInvalidRecoveryConfig = core.ErrInvalidRecoveryConfig
	// ErrHalted: the run died at FaultPlan.KillAt — the error a killed
	// checkpointed run wraps (errors.Is), leaving the directory behind
	// for Restore.
	ErrHalted = machine.ErrHalted
)

// UniformFaults returns a fault plan injecting every failure mode at the
// given per-candidate rate against the given LLC capacity.
func UniformFaults(rate float64, capacity Bytes) FaultPlan {
	return faults.Uniform(rate, capacity)
}

// PolicyByName resolves "default", "strict", or "compromise".
func PolicyByName(name string) (Policy, error) { return core.PolicyByName(name) }

// Machine model (the simulated Table 1 testbed).
type (
	// MachineConfig holds every model constant.
	MachineConfig = machine.Config
	// Machine simulates one run.
	Machine = machine.Machine
	// RunResult summarizes a run.
	RunResult = machine.Result
)

// DefaultMachine returns the Table 1 configuration (12 cores, 1.9 GHz,
// 15360 KiB shared LLC) with calibrated model constants.
func DefaultMachine() MachineConfig { return machine.DefaultConfig() }

// Measurement (the perf + RAPL stand-in).
type (
	// Metrics are the §4.1 evaluation metrics.
	Metrics = perf.Metrics
	// RunConfig describes one measured configuration.
	RunConfig = perf.RunConfig
)

// Crash-safe persistence: an append-only admission journal plus
// periodic state snapshots, written while a run executes and restored
// after a process death so the run resumes byte-identical to one that
// was never killed. Arm a checkpoint through RunConfig.Checkpoint (with
// FaultPlan.KillAt for the injected death), then load the directory
// with Restore and resume through RunConfig.Restore.
type (
	// CheckpointConfig selects the checkpoint directory and the virtual
	// period between state snapshots (0 = journal-only after the attach
	// snapshot).
	CheckpointConfig = persist.Config
	// Restored is a checkpoint loaded back from disk: the reconstructed
	// scheduler state plus its journal provenance (sequence reached,
	// snapshot anchor, records replayed, torn-tail truncation).
	Restored = persist.Restored
)

// Restore loads the last valid snapshot under dir and replays the
// journal suffix on top, truncating at the first torn or corrupt frame.
func Restore(dir string) (*Restored, error) { return persist.Restore(dir) }

// Telemetry (the observability layer): a metrics registry fed by the
// scheduler's decision path and streamed decision traces. Enable both
// through RunConfig.Telemetry / RunConfig.Trace; the collected registry
// and spans come back on Metrics.Telemetry / Metrics.Spans.
type (
	// TelemetryRegistry holds counters, gauges, and log-bucketed
	// histograms, with Prometheus text and JSON encoders.
	TelemetryRegistry = telemetry.Registry
	// TraceSpan is one progress period's begin→admit→end lifecycle.
	TraceSpan = trace.Span
	// SchedEvent is one raw decision-path event.
	SchedEvent = core.Event
	// EventSink receives the scheduler's decision stream (AddSink).
	EventSink = core.EventSink
)

// NewTelemetryRegistry returns an empty metrics registry, e.g. to pass
// to Scheduler.SetMetrics on a hand-wired stack.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// WriteChromeTrace writes spans as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []TraceSpan) error {
	return trace.WriteChrome(w, spans)
}

// Causal wait attribution (the blame engine): who made each denied
// period wait, and for how long. Enable through RunConfig.Blame /
// RunConfig.SLO (results on Metrics.Blame / Metrics.SLO), or attach a
// BlameCollector / SLOMonitor via Scheduler.AddSink on a hand-wired
// stack. Attribution is exact: blamed shares plus the unattributed
// remainder reconstruct every wait to the picosecond.
type (
	// Blocker is one admitted period resident at denial time.
	Blocker = core.Blocker
	// BlameSink extends EventSink with denial-time blocker snapshots.
	BlameSink = core.BlameSink
	// BlameCollector consumes the decision stream into a BlameReport.
	BlameCollector = blame.Collector
	// BlameReport is the attribution result: per-period blame timeline,
	// interference matrix, and critical-path decomposition.
	BlameReport = blame.Report
	// PeriodBlame is one denied period's wait, split across blockers.
	PeriodBlame = blame.PeriodBlame
	// InterferenceCell is one (blocker process, waiting process) total.
	InterferenceCell = blame.MatrixCell
	// CriticalPath splits a run's makespan into run / blamed wait /
	// unattributed wait / idle segments.
	CriticalPath = blame.Path
	// SLOConfig is an admission-latency objective with burn-rate
	// alerting windows.
	SLOConfig = blame.SLOConfig
	// SLOMonitor evaluates an SLOConfig over the decision stream.
	SLOMonitor = blame.SLOMonitor
	// SLOResult is the evaluation: breach counts, alert count, and the
	// multi-window burn-rate timeline.
	SLOResult = blame.SLOResult
	// ObsReportMeta labels the HTML observability report.
	ObsReportMeta = blame.ReportMeta
)

// NewBlameCollector returns an empty attribution collector to pass to
// Scheduler.AddSink; call Finish then Report after the run.
func NewBlameCollector() *BlameCollector { return blame.NewCollector() }

// DefaultSLOConfig returns the default admission-latency objective
// (50 ms at the 95th percentile, 1 s and 5 s burn windows, alert at 2x).
func DefaultSLOConfig() SLOConfig { return blame.DefaultSLOConfig() }

// NewSLOMonitor returns a monitor for cfg to pass to Scheduler.AddSink;
// call Result after the run. The configuration is validated.
func NewSLOMonitor(cfg SLOConfig) (*SLOMonitor, error) { return blame.NewSLOMonitor(cfg) }

// WriteObservabilityHTML renders a blame report and an optional SLO
// result (nil to omit) as one self-contained HTML document: summary
// cards, critical-path bar, interference heatmap, top waiters, and the
// burn-rate timeline, with the raw payload embedded as JSON.
func WriteObservabilityHTML(w io.Writer, meta ObsReportMeta, rpt *BlameReport, slo *SLOResult) error {
	return blame.WriteHTML(w, meta, rpt, slo)
}

// Live introspection: an embeddable HTTP server exposing a running
// measurement's telemetry (/metrics), decision stream (/events, SSE),
// canonical state (/state), wait attribution (/blame), health probes,
// and pprof. Attach it through RunConfig.Obsrv; throttle virtual time
// against the wall clock with RunConfig.Pace. Observation never changes
// results: every endpoint serves non-blocking copies.
type (
	// ObsrvConfig configures the introspection server (listen address,
	// per-subscriber event buffer, state publication period).
	ObsrvConfig = obsrv.Config
	// ObsrvServer is a live introspection endpoint.
	ObsrvServer = obsrv.Server
)

// Serve binds the introspection server and starts serving; pass the
// returned server as RunConfig.Obsrv and Close it when done.
func Serve(cfg ObsrvConfig) (*ObsrvServer, error) { return obsrv.Serve(cfg) }

// ParsePace parses the CLI pacing syntax ("max", "1x", "10x", "0.5x")
// into a RunConfig.Pace ratio.
func ParsePace(s string) (float64, error) { return obsrv.ParsePace(s) }

// ErrRunStopped: the run was halted by ObsrvServer.RequestStop (the
// CLIs' SIGTERM path); a clean, intentional end (errors.Is).
var ErrRunStopped = perf.ErrStopped

// Table2 returns the paper's eight workloads.
func Table2() []Workload { return workloads.Table2() }

// WorkloadByName looks a Table 2 workload up by name.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// Run measures a workload under a scheduling configuration, averaging
// repetitions, and returns mean and standard-deviation metrics. A nil
// policy selects the Linux-default baseline: the workload runs
// uninstrumented (Declared flags stripped, no admission control).
func Run(w Workload, rc RunConfig) (mean, stddev Metrics, err error) {
	return perf.Run(w, rc)
}

// NewScheduledMachine wires the standard stack: a machine with the given
// config whose declared phases are gated by a fresh RDA scheduler running
// the given policy. It returns both so callers can add workloads and
// inspect the scheduler after the run.
func NewScheduledMachine(cfg MachineConfig, policy Policy) (*Machine, *Scheduler) {
	s := core.New(policy, cfg.LLCCapacity)
	m := machine.New(cfg, s)
	s.SetWaker(m)
	return m, s
}
